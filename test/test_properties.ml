(* Property-based tests (qcheck, registered as alcotest cases).

   Invariants covered:
   - covering-path extraction always covers every vertex and edge, for
     both strategies, on arbitrary connected patterns;
   - all engines agree with the naive oracle on arbitrary streams
     (the end-to-end correctness property);
   - micro-batched ingestion is equivalent to sequential replay on
     random add/remove windows, including intra-batch cancellation;
   - relations behave as deduplicated sets under random insert/remove,
     with cached indexes staying consistent with rebuilt ones;
   - embedding merge is commutative and conflict-symmetric;
   - trie insertion shares prefixes: inserting the same path twice never
     creates nodes, and node count equals the number of distinct prefixes
     of all inserted words. *)

open Tric_graph
open Tric_query
open Tric_rel

let elabels = [ "a"; "b"; "c" ]
let vconsts = [ "v1"; "v2"; "v3"; "v4" ]

(* Generator of random connected patterns: a random spine plus extra
   edges attached to existing vertices. *)
let gen_pattern_spec =
  QCheck2.Gen.(
    let term =
      oneof
        [
          map (fun i -> `Var i) (int_bound 4);
          map (fun i -> `Const i) (int_bound (List.length vconsts - 1));
        ]
    in
    let edge = triple (int_bound (List.length elabels - 1)) term term in
    list_size (int_range 1 6) edge)

let build_pattern ~id spec =
  let b = Pattern.Builder.create ~id () in
  (* Chain the edges through shared terms to keep the pattern connected:
     edge i's source is edge (i-1)'s target unless the spec's own source
     term is a constant (which anchors naturally). *)
  let prev = ref None in
  List.iter
    (fun (li, s, d) ->
      let term_of = function
        | `Var i -> Term.var (Printf.sprintf "x%d" i)
        | `Const i -> Term.const (List.nth vconsts i)
      in
      let src =
        match !prev with
        | Some p when (match s with `Var _ -> true | `Const _ -> false) -> p
        | _ -> term_of s
      in
      let dst = term_of d in
      let sv = Pattern.Builder.vertex b src and dv = Pattern.Builder.vertex b dst in
      Pattern.Builder.edge b ~label:(Label.intern (List.nth elabels li)) sv dv;
      prev := Some dst)
    spec;
  Pattern.Builder.build b

let valid_spec spec =
  (* The builder rejects edge-free patterns; duplicates collapsing to an
     isolated vertex can't happen by construction. *)
  spec <> []

let prop_cover_covers strategy =
  QCheck2.Test.make ~count:300
    ~name:
      (Printf.sprintf "cover(%s) covers all vertices and edges"
         (match strategy with Cover.Upstream -> "upstream" | Cover.Naive -> "naive"))
    gen_pattern_spec
    (fun spec ->
      QCheck2.assume (valid_spec spec);
      match build_pattern ~id:1 spec with
      | exception Invalid_argument _ -> QCheck2.assume_fail ()
      | q ->
        if not (Pattern.is_connected q) then QCheck2.assume_fail ()
        else Cover.covers q (Cover.extract ~strategy q))

let gen_stream_spec =
  QCheck2.Gen.(
    list_size (int_range 1 60)
      (triple (int_bound (List.length elabels - 1))
         (int_bound (List.length vconsts - 1))
         (int_bound (List.length vconsts - 1))))

let edges_of_spec spec =
  List.map
    (fun (li, si, di) ->
      Edge.of_strings (List.nth elabels li) (List.nth vconsts si) (List.nth vconsts di))
    spec

let print_case (qspecs, sspec) =
  let term = function `Var i -> Printf.sprintf "?x%d" i | `Const i -> List.nth vconsts i in
  let spec_to_string spec =
    String.concat "; "
      (List.map (fun (li, s, d) -> Printf.sprintf "%s -%s-> %s" (term s) (List.nth elabels li) (term d)) spec)
  in
  Printf.sprintf "queries=[%s] stream=[%s]"
    (String.concat " | " (List.map spec_to_string qspecs))
    (String.concat "; "
       (List.map
          (fun (li, si, di) ->
            Printf.sprintf "%s -%s-> %s" (List.nth vconsts si) (List.nth elabels li)
              (List.nth vconsts di))
          sspec))

let prop_engine_agrees name mk =
  QCheck2.Test.make ~count:40 ~print:print_case
    ~name:(Printf.sprintf "%s agrees with oracle on random streams" name)
    QCheck2.Gen.(pair (list_size (int_range 1 4) gen_pattern_spec) gen_stream_spec)
    (fun (qspecs, sspec) ->
      QCheck2.assume (List.for_all valid_spec qspecs);
      let queries =
        List.filteri (fun _ _ -> true) qspecs
        |> List.mapi (fun i spec ->
               match build_pattern ~id:(i + 1) spec with
               | q when Pattern.is_connected q -> Some q
               | _ -> None
               | exception Invalid_argument _ -> None)
        |> List.filter_map Fun.id
      in
      QCheck2.assume (queries <> []);
      let engine = mk () in
      let oracle = Tric_engine.Engines.naive () in
      List.iter
        (fun q ->
          engine.Tric_engine.Matcher.add_query q;
          oracle.Tric_engine.Matcher.add_query q)
        queries;
      List.for_all
        (fun e ->
          let u = Update.add e in
          Tric_engine.Report.equal
            (oracle.Tric_engine.Matcher.handle_update u)
            (engine.Tric_engine.Matcher.handle_update u))
        (edges_of_spec sspec))

let print_mixed_case (qspecs, sspec) =
  let term = function `Var i -> Printf.sprintf "?x%d" i | `Const i -> List.nth vconsts i in
  let spec_to_string spec =
    String.concat "; "
      (List.map (fun (li, s, d) -> Printf.sprintf "%s -%s-> %s" (term s) (List.nth elabels li) (term d)) spec)
  in
  Printf.sprintf "queries=[%s] stream=[%s]"
    (String.concat " | " (List.map spec_to_string qspecs))
    (String.concat "; "
       (List.map
          (fun (add, li, si, di) ->
            Printf.sprintf "%s%s -%s-> %s" (if add then "+" else "-") (List.nth vconsts si)
              (List.nth elabels li) (List.nth vconsts di))
          sspec))

(* The stream generator draws add/remove ops over a 4-constant, 3-label
   vocabulary, so removals of live edges, no-op removals of absent edges,
   and re-adds of previously removed edges all occur constantly.  After
   EVERY update, TRIC and TRIC+ must match the naive oracle's report and
   full current result, and must agree with each other on the materialized
   view cardinalities (their tries are identical, so any divergence is a
   maintenance bug in one cache mode). *)
let prop_engines_agree_under_deletions =
  QCheck2.Test.make ~count:30 ~print:print_mixed_case
    ~name:"TRIC/TRIC+ = oracle under interleaved add/remove/re-add"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 3) gen_pattern_spec)
        (list_size (int_range 1 60)
           (quad bool (int_bound (List.length elabels - 1))
              (int_bound (List.length vconsts - 1))
              (int_bound (List.length vconsts - 1)))))
    (fun (qspecs, sspec) ->
      QCheck2.assume (List.for_all valid_spec qspecs);
      let queries =
        List.mapi
          (fun i spec ->
            match build_pattern ~id:(i + 1) spec with
            | q when Pattern.is_connected q -> Some q
            | _ -> None
            | exception Invalid_argument _ -> None)
          qspecs
        |> List.filter_map Fun.id
      in
      QCheck2.assume (queries <> []);
      let oracle = Tric_engine.Naive.create () in
      let tric = Tric_core.Tric.create () in
      let tricp = Tric_core.Tric.create ~cache:true () in
      List.iter
        (fun q ->
          Tric_engine.Naive.add_query oracle q;
          Tric_core.Tric.add_query tric q;
          Tric_core.Tric.add_query tricp q)
        queries;
      let matches_agree qid =
        let sorted m = List.sort_uniq Embedding.compare m in
        let exp = sorted (Tric_engine.Naive.current_matches oracle qid) in
        let a = sorted (Tric_core.Tric.current_matches tric qid) in
        let b = sorted (Tric_core.Tric.current_matches tricp qid) in
        List.length exp = List.length a
        && List.for_all2 Embedding.equal exp a
        && List.length exp = List.length b
        && List.for_all2 Embedding.equal exp b
      in
      (* Audit postcondition: after every update both cache modes must be
         certifiably coherent against the ground-truth edge set — the
         sanitizer closes over internal state the black-box report
         comparison cannot see (indexes, caches, accounting). *)
      let live = Edge.Tbl.create 64 in
      let audit_clean t =
        let edges = Edge.Tbl.fold (fun e () acc -> e :: acc) live [] in
        Tric_audit.Audit.is_clean (Tric_audit.Audit.check ~edges t)
      in
      List.for_all
        (fun u ->
          let expected = Tric_engine.Naive.handle_update oracle u in
          let r1 = Tric_engine.Report.of_pair (Tric_core.Tric.handle_update tric u) in
          let r2 = Tric_engine.Report.of_pair (Tric_core.Tric.handle_update tricp u) in
          (match u.Update.op with
          | Update.Add e -> Edge.Tbl.replace live e ()
          | Update.Remove e -> Edge.Tbl.remove live e);
          Tric_engine.Report.equal expected r1
          && Tric_engine.Report.equal expected r2
          && (Tric_core.Tric.stats tric).Tric_core.Tric.view_tuples
             = (Tric_core.Tric.stats tricp).Tric_core.Tric.view_tuples
          && audit_clean tric && audit_clean tricp
          && List.for_all (fun q -> matches_agree (Pattern.id q)) queries)
        (List.map
           (fun (add, li, si, di) ->
             let e =
               Edge.of_strings (List.nth elabels li) (List.nth vconsts si)
                 (List.nth vconsts di)
             in
             if add then Update.add e else Update.remove e)
           sspec))

let print_batch_case ((qspecs, sspec), window) =
  Printf.sprintf "window=%d %s" window (print_mixed_case (qspecs, sspec))

(* Batched ingestion must be a pure optimisation: chopping a random
   add/remove stream into windows and feeding each through [handle_batch]
   must leave TRIC, TRIC+ and the naive oracle with exactly the matches a
   sequential [handle_update] replay produces.  The 48-edge vocabulary
   with windows up to 10 constantly produces intra-batch duplicates and
   add+remove of the same edge, which is where net-op folding could go
   wrong.  TRIC and TRIC+ batch reports must also agree with each other
   (same trie, different cache modes). *)
let prop_batch_equals_sequential =
  QCheck2.Test.make ~count:30 ~print:print_batch_case
    ~name:"handle_batch = sequential handle_update (TRIC, TRIC+, oracle)"
    QCheck2.Gen.(
      pair
        (pair
           (list_size (int_range 1 3) gen_pattern_spec)
           (list_size (int_range 1 60)
              (quad bool (int_bound (List.length elabels - 1))
                 (int_bound (List.length vconsts - 1))
                 (int_bound (List.length vconsts - 1)))))
        (int_range 1 10))
    (fun ((qspecs, sspec), window) ->
      QCheck2.assume (List.for_all valid_spec qspecs);
      let queries =
        List.mapi
          (fun i spec ->
            match build_pattern ~id:(i + 1) spec with
            | q when Pattern.is_connected q -> Some q
            | _ -> None
            | exception Invalid_argument _ -> None)
          qspecs
        |> List.filter_map Fun.id
      in
      QCheck2.assume (queries <> []);
      let seq = Tric_core.Tric.create () in
      let tric = Tric_core.Tric.create () in
      let tricp = Tric_core.Tric.create ~cache:true () in
      let oracle = Tric_engine.Engines.naive () in
      List.iter
        (fun q ->
          Tric_core.Tric.add_query seq q;
          Tric_core.Tric.add_query tric q;
          Tric_core.Tric.add_query tricp q;
          oracle.Tric_engine.Matcher.add_query q)
        queries;
      let updates =
        List.map
          (fun (add, li, si, di) ->
            let e =
              Edge.of_strings (List.nth elabels li) (List.nth vconsts si)
                (List.nth vconsts di)
            in
            if add then Update.add e else Update.remove e)
          sspec
      in
      let rec windows = function
        | [] -> []
        | us ->
          let n = min window (List.length us) in
          List.filteri (fun i _ -> i < n) us
          :: windows (List.filteri (fun i _ -> i >= n) us)
      in
      let matches_agree qid =
        let sorted m = List.sort_uniq Embedding.compare m in
        let exp = sorted (Tric_core.Tric.current_matches seq qid) in
        let agree got =
          List.length exp = List.length got && List.for_all2 Embedding.equal exp got
        in
        agree (sorted (Tric_core.Tric.current_matches tric qid))
        && agree (sorted (Tric_core.Tric.current_matches tricp qid))
        && agree (sorted (oracle.Tric_engine.Matcher.current_matches qid))
      in
      (* Audit postcondition: after every window, batched maintenance (with
         its net-op folding and amortised sweeps) must leave both cache
         modes audit-clean against the live edge set. *)
      let live = Edge.Tbl.create 64 in
      let audit_clean t =
        let edges = Edge.Tbl.fold (fun e () acc -> e :: acc) live [] in
        Tric_audit.Audit.is_clean (Tric_audit.Audit.check ~edges t)
      in
      List.for_all
        (fun w ->
          List.iter (fun u -> ignore (Tric_core.Tric.handle_update seq u)) w;
          let r1 = Tric_engine.Report.of_pair (Tric_core.Tric.handle_batch tric w) in
          let r2 = Tric_engine.Report.of_pair (Tric_core.Tric.handle_batch tricp w) in
          ignore (oracle.Tric_engine.Matcher.handle_batch w);
          List.iter
            (fun u ->
              match u.Update.op with
              | Update.Add e -> Edge.Tbl.replace live e ()
              | Update.Remove e -> Edge.Tbl.remove live e)
            w;
          Tric_engine.Report.equal r1 r2
          && audit_clean tric && audit_clean tricp
          && List.for_all (fun q -> matches_agree (Pattern.id q)) queries)
        (windows updates))

(* Targeted dispatch must be invisible: for any shard count, the
   domain-parallel engine — which routes each op only to the shards named
   by the per-key dispatch bitmaps, not to all of them — must produce
   exactly the sequential engine's report after every update of a random
   mixed add/remove stream, keep identical current matches, and stay
   audit-clean (which includes the routing-coherence class: trie
   placement AND the bitmaps equalling the forests' per-key shard sets in
   both directions, so a routing bug that skips an affected shard cannot
   hide).  Both cache modes run sharded: TRIC at 1/2/4 domains, TRIC+ at
   2 and 4.  Engines are shut down per iteration — OCaml caps live
   domains, and shrinking replays the property many times. *)
let prop_sharded_equals_sequential =
  QCheck2.Test.make ~count:25 ~print:print_mixed_case
    ~name:"sharded (1/2/4 domains) = sequential TRIC/TRIC+ per update"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 3) gen_pattern_spec)
        (list_size (int_range 1 60)
           (quad bool (int_bound (List.length elabels - 1))
              (int_bound (List.length vconsts - 1))
              (int_bound (List.length vconsts - 1)))))
    (fun (qspecs, sspec) ->
      QCheck2.assume (List.for_all valid_spec qspecs);
      let queries =
        List.mapi
          (fun i spec ->
            match build_pattern ~id:(i + 1) spec with
            | q when Pattern.is_connected q -> Some q
            | _ -> None
            | exception Invalid_argument _ -> None)
          qspecs
        |> List.filter_map Fun.id
      in
      QCheck2.assume (queries <> []);
      let seq = Tric_core.Tric.create () in
      let seqp = Tric_core.Tric.create ~cache:true () in
      let sharded =
        [
          (Tric_core.Tric.create ~shards:1 (), seq);
          (Tric_core.Tric.create ~shards:2 (), seq);
          (Tric_core.Tric.create ~shards:4 (), seq);
          (Tric_core.Tric.create ~cache:true ~shards:2 (), seqp);
          (Tric_core.Tric.create ~cache:true ~shards:4 (), seqp);
        ]
      in
      Fun.protect
        ~finally:(fun () -> List.iter (fun (t, _) -> Tric_core.Tric.shutdown t) sharded)
        (fun () ->
          List.iter
            (fun q ->
              Tric_core.Tric.add_query seq q;
              Tric_core.Tric.add_query seqp q;
              List.iter (fun (t, _) -> Tric_core.Tric.add_query t q) sharded)
            queries;
          let live = Edge.Tbl.create 64 in
          let audit_clean t =
            let edges = Edge.Tbl.fold (fun e () acc -> e :: acc) live [] in
            Tric_audit.Audit.is_clean (Tric_audit.Audit.check ~edges t)
          in
          let matches_agree qid =
            let sorted m = List.sort_uniq Embedding.compare m in
            List.for_all
              (fun (t, reference) ->
                let exp = sorted (Tric_core.Tric.current_matches reference qid) in
                let got = sorted (Tric_core.Tric.current_matches t qid) in
                List.length exp = List.length got && List.for_all2 Embedding.equal exp got)
              sharded
          in
          List.for_all
            (fun u ->
              let expected = Tric_engine.Report.of_pair (Tric_core.Tric.handle_update seq u) in
              let expected_p =
                Tric_engine.Report.of_pair (Tric_core.Tric.handle_update seqp u)
              in
              let reports =
                List.map
                  (fun (t, _) ->
                    Tric_engine.Report.of_pair (Tric_core.Tric.handle_update t u))
                  sharded
              in
              (match u.Update.op with
              | Update.Add e -> Edge.Tbl.replace live e ()
              | Update.Remove e -> Edge.Tbl.remove live e);
              List.for_all2
                (fun (t, reference) r ->
                  let exp = if reference == seq then expected else expected_p in
                  Tric_engine.Report.equal exp r && audit_clean t)
                sharded reports
              && List.for_all (fun q -> matches_agree (Pattern.id q)) queries)
            (List.map
               (fun (add, li, si, di) ->
                 let e =
                   Edge.of_strings (List.nth elabels li) (List.nth vconsts si)
                     (List.nth vconsts di)
                 in
                 if add then Update.add e else Update.remove e)
               sspec)))

(* The batched entry point, sharded: windows of a random mixed stream
   through [handle_batch] — which folds the window to net ops, routes
   each through the dispatch bitmaps into per-shard op queues, and runs
   one combined removals+additions task per affected shard — must equal
   the sequential engine's batched replay report-for-report at 1, 2, 4
   and 8 shards (and on a cached 4-shard engine), stay audit-clean after
   every window, and agree on final matches.  The 8-shard row exceeds the
   label alphabet of the generated streams, so some shards stay empty —
   exactly the skewed-ownership regime targeted routing must survive. *)
let prop_sharded_batch_equals_sequential =
  QCheck2.Test.make ~count:25 ~print:print_batch_case
    ~name:"sharded handle_batch = sequential handle_batch (1/2/4/8 domains)"
    QCheck2.Gen.(
      pair
        (pair
           (list_size (int_range 1 3) gen_pattern_spec)
           (list_size (int_range 1 60)
              (quad bool (int_bound (List.length elabels - 1))
                 (int_bound (List.length vconsts - 1))
                 (int_bound (List.length vconsts - 1)))))
        (int_range 1 10))
    (fun ((qspecs, sspec), window) ->
      QCheck2.assume (List.for_all valid_spec qspecs);
      let queries =
        List.mapi
          (fun i spec ->
            match build_pattern ~id:(i + 1) spec with
            | q when Pattern.is_connected q -> Some q
            | _ -> None
            | exception Invalid_argument _ -> None)
          qspecs
        |> List.filter_map Fun.id
      in
      QCheck2.assume (queries <> []);
      let seq = Tric_core.Tric.create () in
      let sharded =
        [
          Tric_core.Tric.create ~shards:1 ();
          Tric_core.Tric.create ~shards:2 ();
          Tric_core.Tric.create ~shards:4 ();
          Tric_core.Tric.create ~shards:8 ();
          Tric_core.Tric.create ~cache:true ~shards:4 ();
        ]
      in
      Fun.protect
        ~finally:(fun () -> List.iter Tric_core.Tric.shutdown sharded)
        (fun () ->
          List.iter
            (fun q ->
              Tric_core.Tric.add_query seq q;
              List.iter (fun t -> Tric_core.Tric.add_query t q) sharded)
            queries;
          let updates =
            List.map
              (fun (add, li, si, di) ->
                let e =
                  Edge.of_strings (List.nth elabels li) (List.nth vconsts si)
                    (List.nth vconsts di)
                in
                if add then Update.add e else Update.remove e)
              sspec
          in
          let rec windows = function
            | [] -> []
            | us ->
              let n = min window (List.length us) in
              List.filteri (fun i _ -> i < n) us
              :: windows (List.filteri (fun i _ -> i >= n) us)
          in
          let live = Edge.Tbl.create 64 in
          let audit_clean t =
            let edges = Edge.Tbl.fold (fun e () acc -> e :: acc) live [] in
            Tric_audit.Audit.is_clean (Tric_audit.Audit.check ~edges t)
          in
          let matches_agree qid =
            let sorted m = List.sort_uniq Embedding.compare m in
            let exp = sorted (Tric_core.Tric.current_matches seq qid) in
            List.for_all
              (fun t ->
                let got = sorted (Tric_core.Tric.current_matches t qid) in
                List.length exp = List.length got && List.for_all2 Embedding.equal exp got)
              sharded
          in
          List.for_all
            (fun w ->
              let expected = Tric_engine.Report.of_pair (Tric_core.Tric.handle_batch seq w) in
              let reports =
                List.map
                  (fun t -> Tric_engine.Report.of_pair (Tric_core.Tric.handle_batch t w))
                  sharded
              in
              List.iter
                (fun u ->
                  match u.Update.op with
                  | Update.Add e -> Edge.Tbl.replace live e ()
                  | Update.Remove e -> Edge.Tbl.remove live e)
                w;
              List.for_all2
                (fun t r -> Tric_engine.Report.equal expected r && audit_clean t)
                sharded reports
              && List.for_all (fun q -> matches_agree (Pattern.id q)) queries)
            (windows updates)))

(* Packed row-store differential: the arena-backed engines against the
   boxed naive oracle, with the arena accounting checked at every step.
   Every view tuple lives as a width-stride slice of a flat int array
   owned by its shard, deduplicated by an open-addressing row-id table —
   so this property drives the layout through exactly the regimes that
   stress the freelist and the tombstone chains: interleaved
   add/remove/re-add per update, then net-op-folded batches, at 1 and 4
   shards and in both cache modes.  After every step three things must
   hold: reports and full current matches equal the oracle's, the audit
   (including the arena-integrity class — freelist/live-map coherence, no
   dangling row ids reachable from dedup slots or index buckets) stays
   clean against the ground-truth edge set, and [mem_stats] stays
   arithmetically sane (per shard, live + free slots never exceed arena
   capacity).  A final drain removes every live edge and requires all
   arenas to account zero live rows — leaks of freed slots survive report
   comparison, they cannot survive this.  The windowed regime rides the
   windowed-oracle properties below at the same shard counts, which run
   on the same packed layout. *)
let prop_packed_layout_equals_oracle =
  QCheck2.Test.make ~count:20 ~print:print_batch_case
    ~name:"packed row-store = boxed oracle (1/4 shards, add/remove + batch + drain)"
    QCheck2.Gen.(
      pair
        (pair
           (list_size (int_range 1 3) gen_pattern_spec)
           (list_size (int_range 1 60)
              (quad bool (int_bound (List.length elabels - 1))
                 (int_bound (List.length vconsts - 1))
                 (int_bound (List.length vconsts - 1)))))
        (int_range 1 8))
    (fun ((qspecs, sspec), window) ->
      QCheck2.assume (List.for_all valid_spec qspecs);
      let queries =
        List.mapi
          (fun i spec ->
            match build_pattern ~id:(i + 1) spec with
            | q when Pattern.is_connected q -> Some q
            | _ -> None
            | exception Invalid_argument _ -> None)
          qspecs
        |> List.filter_map Fun.id
      in
      QCheck2.assume (queries <> []);
      let oracle = Tric_engine.Naive.create () in
      let perupd =
        [
          Tric_core.Tric.create ~shards:1 ();
          Tric_core.Tric.create ~cache:true ~shards:4 ();
        ]
      in
      let batched =
        [
          Tric_core.Tric.create ~cache:true ~shards:1 ();
          Tric_core.Tric.create ~shards:4 ();
        ]
      in
      Fun.protect
        ~finally:(fun () -> List.iter Tric_core.Tric.shutdown (perupd @ batched))
        (fun () ->
          List.iter
            (fun q ->
              Tric_engine.Naive.add_query oracle q;
              List.iter (fun t -> Tric_core.Tric.add_query t q) (perupd @ batched))
            queries;
          let updates =
            List.map
              (fun (add, li, si, di) ->
                let e =
                  Edge.of_strings (List.nth elabels li) (List.nth vconsts si)
                    (List.nth vconsts di)
                in
                if add then Update.add e else Update.remove e)
              sspec
          in
          let mem_sane t =
            Array.for_all
              (fun (cap, live, free) ->
                live >= 0 && free >= 0 && live + free <= cap)
              (Tric_core.Tric.mem_stats t)
          in
          let matches_oracle t =
            List.for_all
              (fun q ->
                let qid = Pattern.id q in
                let sorted m = List.sort_uniq Embedding.compare m in
                let exp = sorted (Tric_engine.Naive.current_matches oracle qid) in
                let got = sorted (Tric_core.Tric.current_matches t qid) in
                List.length exp = List.length got
                && List.for_all2 Embedding.equal exp got)
              queries
          in
          let live = Edge.Tbl.create 64 in
          let track u =
            match u.Update.op with
            | Update.Add e -> Edge.Tbl.replace live e ()
            | Update.Remove e -> Edge.Tbl.remove live e
          in
          let audit_clean t =
            let edges = Edge.Tbl.fold (fun e () acc -> e :: acc) live [] in
            Tric_audit.Audit.is_clean (Tric_audit.Audit.check ~edges t)
          in
          (* Per-update phase: report-for-report against the oracle. *)
          let stream_ok =
            List.for_all
              (fun u ->
                let expected = Tric_engine.Naive.handle_update oracle u in
                let reports =
                  List.map
                    (fun t ->
                      Tric_engine.Report.of_pair (Tric_core.Tric.handle_update t u))
                    perupd
                in
                track u;
                List.for_all2
                  (fun t r ->
                    Tric_engine.Report.equal expected r
                    && audit_clean t && mem_sane t && matches_oracle t)
                  perupd reports)
              updates
          in
          (* Batch phase: the same stream through [handle_batch] windows.
             Net-op folding makes per-window reports legitimately differ
             from the oracle's per-update reports, but both batched
             engines must emit identical reports to each other, stay
             audit-clean at every barrier, and land on the oracle's final
             matches. *)
          let rec windows = function
            | [] -> []
            | us ->
              let n = min window (List.length us) in
              List.filteri (fun i _ -> i < n) us
              :: windows (List.filteri (fun i _ -> i >= n) us)
          in
          Edge.Tbl.reset live;
          let batch_ok =
            List.for_all
              (fun w ->
                let reports =
                  List.map
                    (fun t ->
                      Tric_engine.Report.of_pair (Tric_core.Tric.handle_batch t w))
                    batched
                in
                List.iter track w;
                (match reports with
                | r0 :: rest -> List.for_all (Tric_engine.Report.equal r0) rest
                | [] -> true)
                && List.for_all (fun t -> audit_clean t && mem_sane t) batched)
              (windows updates)
            && List.for_all matches_oracle batched
          in
          (* Drain phase: remove every surviving edge and require the
             arenas to account zero live rows — every allocated slot must
             have come back through the freelist. *)
          let drain =
            Edge.Tbl.fold (fun e () acc -> Update.remove e :: acc) live []
          in
          List.iter (fun u -> ignore (Tric_engine.Naive.handle_update oracle u)) drain;
          let drain_ok =
            List.for_all
              (fun t ->
                List.iter
                  (fun u -> ignore (Tric_core.Tric.handle_update t u))
                  drain;
                Tric_audit.Audit.is_clean (Tric_audit.Audit.check ~edges:[] t)
                && mem_sane t
                && Array.for_all
                     (fun (_, rows, _) -> rows = 0)
                     (Tric_core.Tric.mem_stats t))
              (perupd @ batched)
          in
          stream_ok && batch_ok && drain_ok))

let prop_relation_set_semantics =
  QCheck2.Test.make ~count:200 ~name:"relation = deduplicated set under insert/remove"
    QCheck2.Gen.(list_size (int_range 0 100) (pair bool (pair (int_bound 8) (int_bound 8))))
    (fun ops ->
      let r = Relation.create ~cache:true ~width:2 () in
      let probe = Relation.index_on r ~col:0 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (add, (a, b)) ->
          let t =
            Tuple.make [| Label.intern (Printf.sprintf "p%d" a); Label.intern (Printf.sprintf "p%d" b) |]
          in
          if add then begin
            ignore (Relation.insert r t);
            Hashtbl.replace model (a, b) ()
          end
          else begin
            ignore (Relation.remove r t);
            Hashtbl.remove model (a, b)
          end)
        ops;
      Relation.cardinality r = Hashtbl.length model
      && Hashtbl.fold
           (fun (a, _) () acc ->
             acc
             &&
             let expected =
               Hashtbl.fold (fun (a', _) () n -> if a = a' then n + 1 else n) model 0
             in
             List.length (probe (Label.intern (Printf.sprintf "p%d" a))) = expected)
           model true)

let prop_merge_commutative =
  QCheck2.Test.make ~count:300 ~name:"embedding merge is commutative"
    QCheck2.Gen.(pair (list_size (int_range 0 5) (pair (int_bound 4) (int_bound 3)))
                   (list_size (int_range 0 5) (pair (int_bound 4) (int_bound 3))))
    (fun (sa, sb) ->
      let build pairs =
        List.fold_left
          (fun acc (vid, v) ->
            match acc with
            | None -> None
            | Some e -> Embedding.bind e vid (Label.intern (Printf.sprintf "m%d" v)))
          (Some (Embedding.empty 5)) pairs
      in
      match (build sa, build sb) with
      | Some a, Some b -> (
        match (Embedding.merge a b, Embedding.merge b a) with
        | Some x, Some y -> Embedding.equal x y
        | None, None -> true
        | Some _, None | None, Some _ -> false)
      | _ -> QCheck2.assume_fail ())

let prop_trie_sharing =
  QCheck2.Test.make ~count:200 ~name:"trie node count = distinct prefixes"
    QCheck2.Gen.(list_size (int_range 1 20) (list_size (int_range 1 5) (int_bound 3)))
    (fun words ->
      let key i =
        { Ekey.label = Label.intern (Printf.sprintf "k%d" i); src = Ekey.Kvar; dst = Ekey.Kvar }
      in
      let forest = Tric_core.Trie.create ~cache:false () in
      List.iteri
        (fun qid word ->
          ignore (Tric_core.Trie.insert_path forest (List.map key word) ~qid ~path_index:0))
        words;
      let prefixes = Hashtbl.create 64 in
      List.iter
        (fun word ->
          let rec go acc = function
            | [] -> ()
            | k :: tl ->
              let acc = k :: acc in
              Hashtbl.replace prefixes acc ();
              go acc tl
          in
          go [] word)
        words;
      Tric_core.Trie.num_nodes forest = Hashtbl.length prefixes)

(* Analytics invariants against brute-force recomputation. *)

let brute_triangles g =
  (* Count triangles in the undirected simple view by enumerating vertex
     triples adjacent pairwise. *)
  let adjacent u v =
    (not (Label.equal u v))
    && (List.exists (fun (e : Edge.t) -> Label.equal e.dst v) (Graph.out_edges g u)
       || List.exists (fun (e : Edge.t) -> Label.equal e.src v) (Graph.in_edges g u))
  in
  let vs = Array.of_list (Graph.vertices g) in
  let n = Array.length vs in
  let count = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if adjacent vs.(i) vs.(j) then
        for k = j + 1 to n - 1 do
          if adjacent vs.(i) vs.(k) && adjacent vs.(j) vs.(k) then incr count
        done
    done
  done;
  !count

let gen_mixed_stream =
  (* Additions and removals over a small vocabulary; removals may target
     absent edges (must be no-ops). *)
  QCheck2.Gen.(
    list_size (int_range 1 80)
      (quad bool (int_bound (List.length elabels - 1))
         (int_bound (List.length vconsts - 1))
         (int_bound (List.length vconsts - 1))))

let updates_of_mixed spec =
  List.map
    (fun (add, li, si, di) ->
      let e =
        Edge.of_strings (List.nth elabels li) (List.nth vconsts si) (List.nth vconsts di)
      in
      if add then Update.add e else Update.remove e)
    spec

let prop_triangles_match_bruteforce =
  QCheck2.Test.make ~count:150 ~name:"incremental triangles = brute force"
    gen_mixed_stream
    (fun spec ->
      let updates = updates_of_mixed spec in
      let m = Tric_analytics.Metrics.create () in
      let g = Graph.create () in
      List.for_all
        (fun u ->
          Tric_analytics.Metrics.handle_update m u;
          ignore (Update.apply g u);
          Tric_analytics.Metrics.triangles m = brute_triangles g)
        updates)

let prop_components_match_bfs =
  QCheck2.Test.make ~count:100 ~name:"incremental components = BFS reachability"
    gen_mixed_stream
    (fun spec ->
      let updates = updates_of_mixed spec in
      let c = Tric_analytics.Components.create () in
      let g = Graph.create () in
      List.iter
        (fun u ->
          Tric_analytics.Components.handle_update c u;
          ignore (Update.apply g u))
        updates;
      (* Undirected reachability oracle. *)
      let reaches u v =
        let seen = Hashtbl.create 16 in
        let rec go frontier =
          match frontier with
          | [] -> false
          | x :: rest ->
            if Label.equal x v then true
            else if Hashtbl.mem seen x then go rest
            else begin
              Hashtbl.add seen x ();
              let next =
                List.map (fun (e : Edge.t) -> e.dst) (Graph.out_edges g x)
                @ List.map (fun (e : Edge.t) -> e.src) (Graph.in_edges g x)
              in
              go (next @ rest)
            end
        in
        go [ u ]
      in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              let la = Label.intern a and lb = Label.intern b in
              if Graph.mem_vertex g la && Graph.mem_vertex g lb then
                Tric_analytics.Components.same_component c la lb = reaches la lb
              else true)
            vconsts)
        vconsts)

let prop_window_equals_suffix =
  (* A count-window engine over a duplicate-free addition stream must
     report, at the end, exactly the matches of the last W updates. *)
  QCheck2.Test.make ~count:60 ~name:"window engine = evaluation over suffix"
    QCheck2.Gen.(pair gen_pattern_spec gen_stream_spec)
    (fun (qspec, sspec) ->
      QCheck2.assume (valid_spec qspec);
      match build_pattern ~id:1 qspec with
      | exception Invalid_argument _ -> QCheck2.assume_fail ()
      | q ->
        if not (Pattern.is_connected q) then QCheck2.assume_fail ()
        else begin
          let edges =
            List.sort_uniq Edge.compare (edges_of_spec sspec)
          in
          QCheck2.assume (edges <> []);
          let window = 1 + (List.length edges / 2) in
          let w = Tric_engine.Window.create ~window (Tric_engine.Engines.tric ()) in
          Tric_engine.Window.add_query w q;
          List.iter (fun e -> ignore (Tric_engine.Window.handle_update w (Update.add e))) edges;
          let windowed =
            (Tric_engine.Window.engine w).Tric_engine.Matcher.current_matches 1
            |> List.sort_uniq Embedding.compare
          in
          (* Oracle: evaluate the pattern on the graph of the last W
             edges. *)
          let suffix =
            let n = List.length edges in
            List.filteri (fun i _ -> i >= n - window) edges
          in
          let g = Graph.create () in
          List.iter (fun e -> ignore (Graph.add_edge g e)) suffix;
          let expected =
            Tric_engine.Naive.embeddings_in g q |> List.sort_uniq Embedding.compare
          in
          List.length windowed = List.length expected
          && List.for_all2 Embedding.equal windowed expected
        end)

(* Timed mixed stream: add/remove ops with monotone event timestamps
   advancing by a random gap per update.  Gaps up to 5 against a span of 8
   mean most windows see a mix of refreshes, survivals and expiries. *)
let gen_timed_stream =
  QCheck2.Gen.(
    list_size (int_range 1 60)
      (pair
         (quad bool (int_bound (List.length elabels - 1))
            (int_bound (List.length vconsts - 1))
            (int_bound (List.length vconsts - 1)))
         (int_range 0 5)))

let print_timed_case (qspecs, sspec) =
  let mixed = List.map fst sspec in
  Printf.sprintf "%s gaps=[%s]"
    (print_mixed_case (qspecs, mixed))
    (String.concat ";" (List.map (fun (_, g) -> string_of_int g) sspec))

(* The tentpole end-to-end property: a time-sliding windowed engine over a
   timestamped stream is equivalent to a naive oracle replaying the same
   stream with an explicit [Remove] injected for every edge the moment the
   watermark passes its deadline.  Checked per update: the merged report
   (expiry retractions folded into the trigger), every query's current
   matches, and the window-coherence audit against the ground-truth
   unexpired edge set.  [batched] chops the stream into handle_batch
   windows (report comparison is skipped there — net-op folding
   legitimately cancels transient matches the sequential oracle sees). *)
let prop_windowed_equals_oracle ~count ~cache ~shards ~batched =
  let span = 8 in
  let spec = Wspec.Time { shape = Wspec.Sliding; span } in
  QCheck2.Test.make ~count ~print:print_timed_case
    ~name:
      (Printf.sprintf "windowed %s (%d shard%s%s) = expiry-replaying oracle"
         (if cache then "TRIC+" else "TRIC")
         shards
         (if shards = 1 then "" else "s")
         (if batched then ", batched" else ""))
    QCheck2.Gen.(pair (list_size (int_range 1 3) gen_pattern_spec) gen_timed_stream)
    (fun (qspecs, sspec) ->
      QCheck2.assume (List.for_all valid_spec qspecs);
      let queries =
        List.mapi
          (fun i spec ->
            match build_pattern ~id:(i + 1) spec with
            | q when Pattern.is_connected q -> Some q
            | _ -> None
            | exception Invalid_argument _ -> None)
          qspecs
        |> List.filter_map Fun.id
      in
      QCheck2.assume (queries <> []);
      let updates =
        let ts = ref 0 in
        List.map
          (fun ((add, li, si, di), gap) ->
            ts := !ts + gap;
            let e =
              Edge.of_strings (List.nth elabels li) (List.nth vconsts si)
                (List.nth vconsts di)
            in
            if add then Update.add ~ts:!ts e else Update.remove ~ts:!ts e)
          sspec
      in
      let w =
        Tric_engine.Engines.windowed_spec ~default:spec (fun () ->
            Tric_engine.Engines.tric ~cache ~shards ())
      in
      let oracle = Tric_engine.Engines.naive () in
      Fun.protect
        ~finally:(fun () -> w.Tric_engine.Matcher.shutdown ())
        (fun () ->
          List.iter
            (fun q ->
              w.Tric_engine.Matcher.add_query q;
              oracle.Tric_engine.Matcher.add_query q)
            queries;
          (* Oracle-side window model: edge -> deadline, advanced in lock
             step with the stream's watermark. *)
          let model = Edge.Tbl.create 64 in
          let wm = ref min_int in
          (* Replay one update through the oracle, injecting expiry
             removals first; returns (expired, merged oracle report). *)
          let oracle_step (u : Update.t) =
            if u.Update.ts > !wm then wm := u.Update.ts;
            let expired =
              Edge.Tbl.fold (fun e d acc -> if d <= !wm then e :: acc else acc) model []
            in
            let expiry_reports =
              List.map
                (fun e ->
                  Edge.Tbl.remove model e;
                  oracle.Tric_engine.Matcher.handle_update (Update.remove e))
                expired
            in
            (match u.Update.op with
            | Update.Add e -> Edge.Tbl.replace model e (Wspec.deadline spec ~ts:u.Update.ts)
            | Update.Remove e -> Edge.Tbl.remove model e);
            let trigger = oracle.Tric_engine.Matcher.handle_update u in
            (expired, Tric_engine.Report.merge (expiry_reports @ [ trigger ]))
          in
          let state_agrees () =
            List.for_all
              (fun q ->
                let qid = Pattern.id q in
                let sorted m = List.sort_uniq Embedding.compare m in
                let exp = sorted (oracle.Tric_engine.Matcher.current_matches qid) in
                let got = sorted (w.Tric_engine.Matcher.current_matches qid) in
                List.length exp = List.length got && List.for_all2 Embedding.equal exp got)
              queries
          in
          let audit_clean () =
            let live = Edge.Tbl.fold (fun e _ acc -> e :: acc) model [] in
            Tric_audit.Audit.is_clean (w.Tric_engine.Matcher.audit (Some live))
          in
          if batched then begin
            (* Chop into fixed micro-batches; the oracle still steps
               sequentially.  State + audit must agree at every barrier. *)
            let rec chunks n = function
              | [] -> []
              | us ->
                let rec take k = function
                  | x :: rest when k > 0 ->
                    let h, t = take (k - 1) rest in
                    (x :: h, t)
                  | rest -> ([], rest)
                in
                let h, t = take n us in
                h :: chunks n t
            in
            List.for_all
              (fun batch ->
                ignore (w.Tric_engine.Matcher.handle_batch batch);
                List.iter (fun u -> ignore (oracle_step u)) batch;
                state_agrees () && audit_clean ())
              (chunks 5 updates)
          end
          else
            List.for_all
              (fun u ->
                let got = w.Tric_engine.Matcher.handle_update u in
                let expired, expected = oracle_step u in
                let edge = Update.edge u in
                (* When the trigger's own edge expires in the same wave the
                   fold cancels remove+re-add the oracle reports verbatim —
                   states must still agree, reports legitimately differ. *)
                let collision =
                  List.exists (fun e -> Edge.compare e edge = 0) expired
                in
                (collision || Tric_engine.Report.equal expected got)
                && state_agrees () && audit_clean ())
              updates))

let gen_edge =
  QCheck2.Gen.(
    map
      (fun (li, si, di) ->
        Edge.of_strings (List.nth elabels li) (List.nth vconsts si) (List.nth vconsts di))
      (triple (int_bound (List.length elabels - 1))
         (int_bound (List.length vconsts - 1))
         (int_bound (List.length vconsts - 1))))

let prop_ekey_generalisation_sound_complete =
  (* keys_of_edge e = exactly the generic keys that match e (soundness and
     completeness over the key space of the vocabulary). *)
  QCheck2.Test.make ~count:200 ~name:"keys_of_edge = all matching keys"
    QCheck2.Gen.(pair gen_edge gen_edge)
    (fun (e, other) ->
      let keys = Ekey.keys_of_edge e in
      List.for_all (fun k -> Ekey.matches k e) keys
      && List.length (List.sort_uniq Ekey.compare keys) = 4
      &&
      (* Any key derived from any edge matches e iff label agrees and each
         constant endpoint agrees — cross-check with a key from another
         edge. *)
      List.for_all
        (fun k ->
          let expected =
            Label.equal k.Ekey.label e.Edge.label
            && (match Ekey.src_const k with
               | Some c -> Label.equal c e.Edge.src
               | None -> true)
            && match Ekey.dst_const k with
               | Some c -> Label.equal c e.Edge.dst
               | None -> true
          in
          Ekey.matches k e = expected)
        (Ekey.keys_of_edge other))

let prop_cover_path_count_bounded =
  (* A covering set never needs more paths than edges, and the upstream
     strategy covers every edge with at least one path starting at a
     source or constant when one exists. *)
  QCheck2.Test.make ~count:200 ~name:"cover: at most one path per edge"
    gen_pattern_spec
    (fun spec ->
      QCheck2.assume (valid_spec spec);
      match build_pattern ~id:1 spec with
      | exception Invalid_argument _ -> QCheck2.assume_fail ()
      | q ->
        let paths = Cover.extract q in
        List.length paths <= Pattern.num_edges q
        && List.for_all (fun p -> Path.length p >= 1) paths)

let prop_journal_recovery =
  (* Whatever ran through a journal is fully reconstructable: the
     recovered engine has identical current matches for every query. *)
  QCheck2.Test.make ~count:25 ~name:"journal recovery preserves engine state"
    QCheck2.Gen.(pair (list_size (int_range 1 3) gen_pattern_spec) gen_stream_spec)
    (fun (qspecs, sspec) ->
      QCheck2.assume (List.for_all valid_spec qspecs);
      let queries =
        List.mapi
          (fun i spec ->
            match build_pattern ~id:(i + 1) spec with
            | q when Pattern.is_connected q -> Some q
            | _ -> None
            | exception Invalid_argument _ -> None)
          qspecs
        |> List.filter_map Fun.id
      in
      QCheck2.assume (queries <> []);
      let path = Filename.temp_file "tric_prop_journal" ".log" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          let j = Tric_engine.Journal.open_ ~path (fun () -> Tric_engine.Engines.tric ()) in
          List.iter (Tric_engine.Journal.add_query j) queries;
          List.iter
            (fun e -> ignore (Tric_engine.Journal.handle_update j (Update.add e)))
            (edges_of_spec sspec);
          let live = Tric_engine.Journal.engine j in
          Tric_engine.Journal.close j;
          let j2 = Tric_engine.Journal.open_ ~path (fun () -> Tric_engine.Engines.tric ()) in
          let recovered = Tric_engine.Journal.engine j2 in
          let ok =
            List.for_all
              (fun q ->
                let qid = Pattern.id q in
                let a =
                  List.sort Embedding.compare (live.Tric_engine.Matcher.current_matches qid)
                in
                let b =
                  List.sort Embedding.compare
                    (recovered.Tric_engine.Matcher.current_matches qid)
                in
                List.length a = List.length b && List.for_all2 Embedding.equal a b)
              queries
          in
          Tric_engine.Journal.close j2;
          ok))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_cover_covers Cover.Upstream;
      prop_cover_covers Cover.Naive;
      prop_engine_agrees "TRIC" (fun () -> Tric_engine.Engines.tric ());
      prop_engine_agrees "TRIC+" (fun () -> Tric_engine.Engines.tric ~cache:true ());
      prop_engine_agrees "INV" (fun () -> Tric_engine.Engines.inv ());
      prop_engine_agrees "INV+" (fun () -> Tric_engine.Engines.inv ~cache:true ());
      prop_engine_agrees "INC" (fun () -> Tric_engine.Engines.inc ());
      prop_engine_agrees "INC+" (fun () -> Tric_engine.Engines.inc ~cache:true ());
      prop_engine_agrees "GraphDB" (fun () -> Tric_engine.Engines.graphdb ());
      prop_engines_agree_under_deletions;
      prop_batch_equals_sequential;
      prop_sharded_equals_sequential;
      prop_sharded_batch_equals_sequential;
      prop_packed_layout_equals_oracle;
      prop_relation_set_semantics;
      prop_merge_commutative;
      prop_trie_sharing;
      prop_triangles_match_bruteforce;
      prop_components_match_bfs;
      prop_window_equals_suffix;
      prop_windowed_equals_oracle ~count:20 ~cache:false ~shards:1 ~batched:false;
      prop_windowed_equals_oracle ~count:20 ~cache:false ~shards:1 ~batched:true;
      prop_windowed_equals_oracle ~count:20 ~cache:true ~shards:1 ~batched:false;
      prop_windowed_equals_oracle ~count:10 ~cache:true ~shards:4 ~batched:false;
      prop_windowed_equals_oracle ~count:20 ~cache:true ~shards:1 ~batched:true;
      prop_windowed_equals_oracle ~count:10 ~cache:true ~shards:4 ~batched:true;
      prop_ekey_generalisation_sound_complete;
      prop_cover_path_count_bounded;
      prop_journal_recovery;
    ]
