(* Unit tests for the domain pool: result ordering, the barrier property,
   exception propagation, bounded-queue overload, and shutdown
   semantics.  Pools are shut down inside every test — OCaml caps live
   domains, and the suite runs many cases. *)

module Pool = Tric_exec.Pool

let with_pool ~workers f =
  let p = Pool.create ~workers () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let test_results_in_order () =
  with_pool ~workers:3 (fun p ->
      let results =
        Pool.run p (Array.init 20 (fun i () -> i * i)) |> Array.map fst
      in
      Alcotest.(check (array int))
        "results land in submission order"
        (Array.init 20 (fun i -> i * i))
        results)

let test_barrier_sees_all_writes () =
  (* [run] returns only when every task has finished, so unsynchronised
     per-slot writes made inside tasks are all visible after it. *)
  with_pool ~workers:4 (fun p ->
      let slots = Array.make 64 0 in
      ignore (Pool.run p (Array.init 64 (fun i () -> slots.(i) <- i + 1)));
      Alcotest.(check int)
        "every task's write is visible after the barrier" (64 * 65 / 2)
        (Array.fold_left ( + ) 0 slots))

let test_overload_beyond_queue_capacity () =
  (* Far more tasks than queue capacity (cap = max 64 (4*workers)): the
     controller must help drain instead of deadlocking. *)
  with_pool ~workers:2 (fun p ->
      let n = 1000 in
      let total =
        Pool.run p (Array.init n (fun i () -> i))
        |> Array.fold_left (fun acc (v, _) -> acc + v) 0
      in
      Alcotest.(check int) "all tasks ran exactly once" (n * (n - 1) / 2) total)

let test_exception_propagates () =
  with_pool ~workers:2 (fun p ->
      (match
         Pool.run p
           [| (fun () -> 1); (fun () -> failwith "task blew up"); (fun () -> 3) |]
       with
      | _ -> Alcotest.fail "expected the task's exception to re-raise"
      | exception Failure msg ->
        Alcotest.(check string) "original exception surfaces" "task blew up" msg);
      (* The pool survives a failed run. *)
      let after = Pool.run p [| (fun () -> 42) |] in
      Alcotest.(check int) "pool still usable after a failing run" 42 (fst after.(0)))

let test_busy_times_reported () =
  with_pool ~workers:1 (fun p ->
      let timed = Pool.run p [| (fun () -> Unix.sleepf 0.01) |] in
      Alcotest.(check bool)
        "task busy time covers its sleep" true
        (snd timed.(0) >= 0.005))

let test_run_seq_matches_run () =
  let fns = Array.init 10 (fun i () -> i + 100) in
  let seq = Pool.run_seq fns |> Array.map fst in
  with_pool ~workers:2 (fun p ->
      let par = Pool.run p fns |> Array.map fst in
      Alcotest.(check (array int)) "run_seq = run" seq par)

let test_shutdown_idempotent_and_final () =
  let p = Pool.create ~workers:2 () in
  Alcotest.(check bool) "fresh pool is live" false (Pool.is_shut_down p);
  Pool.shutdown p;
  Pool.shutdown p;
  Alcotest.(check bool) "shutdown sticks" true (Pool.is_shut_down p);
  match Pool.run p [| (fun () -> 0) |] with
  | _ -> Alcotest.fail "run after shutdown must raise"
  | exception Invalid_argument _ -> ()

let test_empty_run () =
  with_pool ~workers:1 (fun p ->
      Alcotest.(check int) "empty task array" 0 (Array.length (Pool.run p [||])))

let suite =
  [
    Alcotest.test_case "results in submission order" `Quick test_results_in_order;
    Alcotest.test_case "run is a barrier" `Quick test_barrier_sees_all_writes;
    Alcotest.test_case "overload beyond queue capacity" `Quick
      test_overload_beyond_queue_capacity;
    Alcotest.test_case "task exception re-raises" `Quick test_exception_propagates;
    Alcotest.test_case "per-task busy time" `Quick test_busy_times_reported;
    Alcotest.test_case "run_seq matches run" `Quick test_run_seq_matches_run;
    Alcotest.test_case "shutdown idempotent and final" `Quick
      test_shutdown_idempotent_and_final;
    Alcotest.test_case "empty run" `Quick test_empty_run;
  ]
