(* TRIC / TRIC+ engine tests: the paper's running examples, hand-built
   scenarios, deletions, and randomized differential testing against the
   naive oracle. *)

open Tric_query
open Tric_core
module Engine = Tric_engine

let fig4_queries () =
  (* The four query graph patterns of the paper's Fig. 4. *)
  [
    Helpers.pattern ~name:"Q1" ~id:1
      "?f1 -hasMod-> ?p1 -posted-> pst1; ?p1 -posted-> pst2; ?com1 -reply-> pst2";
    Helpers.pattern ~name:"Q2" ~id:2 "?f1 -hasMod-> ?p1";
    Helpers.pattern ~name:"Q3" ~id:3
      "com1 -hasCreator-> ?p1 -posted-> pst1 -containedIn-> ?c";
    Helpers.pattern ~name:"Q4" ~id:4 "?f1 -hasMod-> ?p1 -posted-> pst1 -containedIn-> ?c";
  ]

let test_fig4_covering_paths () =
  let t = Tric.create () in
  List.iter (Tric.add_query t) (fig4_queries ());
  let path_strings qid =
    List.map
      (fun p -> Format.asprintf "%a" (Path.pp (List.nth (fig4_queries ()) (qid - 1))) p)
      (Tric.covering_paths t qid)
  in
  Alcotest.(check (list string))
    "Q1 covering paths"
    [
      "{?f1 -hasMod-> ?p1 -posted-> pst1}";
      "{?f1 -hasMod-> ?p1 -posted-> pst2}";
      "{?com1 -reply-> pst2}";
    ]
    (path_strings 1);
  Alcotest.(check (list string)) "Q2 covering paths" [ "{?f1 -hasMod-> ?p1}" ] (path_strings 2);
  Alcotest.(check (list string))
    "Q3 covering paths"
    [ "{com1 -hasCreator-> ?p1 -posted-> pst1 -containedIn-> ?c}" ]
    (path_strings 3);
  Alcotest.(check (list string))
    "Q4 covering paths"
    [ "{?f1 -hasMod-> ?p1 -posted-> pst1 -containedIn-> ?c}" ]
    (path_strings 4)

let test_fig6_trie_sharing () =
  (* Fig. 6: P1,P2 of Q1, P1 of Q2 and P1 of Q4 share the trie rooted at
     hasMod=(?var,?var); there are 3 tries in total (hasMod, reply,
     hasCreator roots). *)
  let t = Tric.create () in
  List.iter (Tric.add_query t) (fig4_queries ());
  let f = Tric.forest t in
  Alcotest.(check int) "three tries" 3 (Trie.num_tries f);
  (* Shared nodes: hasMod root is one node used by Q1/Q2/Q4. *)
  let root_keys =
    List.map (fun n -> Format.asprintf "%a" Ekey.pp (Trie.node_key n)) (Trie.roots f)
    |> List.sort compare
  in
  Alcotest.(check (list string))
    "root keys"
    [
      "hasCreator=(com1,?var)"; "hasMod=(?var,?var)"; "reply=(?var,pst2)";
    ]
    root_keys;
  (* Node count: hasMod trie = root + posted-pst1 + posted-pst2 +
     containedIn = 4; reply trie = 1; hasCreator trie = 3 (hasCreator,
     posted-pst1, containedIn). *)
  Alcotest.(check int) "node count" 8 (Trie.num_nodes f)

let run_updates engine updates =
  List.map (fun u -> engine.Engine.Matcher.handle_update u) updates

let test_fig9_answering () =
  (* The update scenario of Examples 4.6/4.7: views primed with hasMod
     edges, then posted=(p2,pst1) arrives. *)
  let t = Tric.create () in
  List.iter (Tric.add_query t) (fig4_queries ());
  let e = Engine.Matcher.of_tric t in
  let priming =
    Helpers.updates [ "f1 -hasMod-> p1"; "f2 -hasMod-> p1"; "f2 -hasMod-> p2" ]
  in
  let reports = run_updates e priming in
  (* Each hasMod update satisfies Q2 (single-edge query). *)
  List.iter
    (fun r ->
      Alcotest.(check (list int)) "hasMod satisfies Q2 only" [ 2 ]
        (Engine.Report.satisfied_ids r))
    reports;
  (* posted=(p2,pst1): extends the hasMod chain but Q1/Q3/Q4 need more. *)
  let r = e.Engine.Matcher.handle_update (Helpers.update "p2 -posted-> pst1") in
  Alcotest.(check (list int)) "no query satisfied yet" [] (Engine.Report.satisfied_ids r);
  (* Complete Q1 for moderator f2 (who moderates both p1 and p2):
     posted=(p1,pst2) gives f2 chains to pst1 (via p2) and pst2 (via p1),
     and reply completes it. *)
  let r = e.Engine.Matcher.handle_update (Helpers.update "p1 -posted-> pst2") in
  Alcotest.(check (list int)) "still nothing" [] (Engine.Report.satisfied_ids r);
  let r = e.Engine.Matcher.handle_update (Helpers.update "com9 -reply-> pst2") in
  Alcotest.(check (list int))
    "reply alone not enough (no p posted both pst1 and pst2)" []
    (Engine.Report.satisfied_ids r);
  (* p1-posted->pst1 makes p1 the poster of both pst1 and pst2; its
     moderators f1 and f2 each complete Q1 (with ?com1 = com9). *)
  let r = e.Engine.Matcher.handle_update (Helpers.update "p1 -posted-> pst1") in
  Alcotest.(check (list int)) "Q1 satisfied" [ 1 ] (Engine.Report.satisfied_ids r);
  Alcotest.(check int) "two embeddings (f1 and f2)" 2 (Engine.Report.total_matches r)

let test_duplicate_update_no_new_matches () =
  let t = Tric.create () in
  Tric.add_query t (Helpers.pattern ~id:7 "?x -a-> ?y");
  let e = Engine.Matcher.of_tric t in
  let r1 = e.Engine.Matcher.handle_update (Helpers.update "v1 -a-> v2") in
  Alcotest.(check int) "first time matches" 1 (Engine.Report.total_matches r1);
  let r2 = e.Engine.Matcher.handle_update (Helpers.update "v1 -a-> v2") in
  Alcotest.(check int) "duplicate is silent" 0 (Engine.Report.total_matches r2)

let test_cycle_query () =
  let t = Tric.create () in
  Tric.add_query t (Helpers.pattern ~id:9 "?x -a-> ?y; ?y -a-> ?z; ?z -a-> ?x");
  let e = Engine.Matcher.of_tric t in
  let r = run_updates e (Helpers.updates [ "v1 -a-> v2"; "v2 -a-> v3" ]) in
  List.iter
    (fun r -> Alcotest.(check int) "no match yet" 0 (Engine.Report.total_matches r))
    r;
  let r = e.Engine.Matcher.handle_update (Helpers.update "v3 -a-> v1") in
  (* The closing edge creates 3 rotations?  No: variables are distinct per
     binding; rotations bind different (x,y,z) triples, so 3 embeddings. *)
  Alcotest.(check int) "cycle closes with 3 rotations" 3 (Engine.Report.total_matches r);
  (* A self-loop matches the cycle homomorphically (x=y=z). *)
  let r = e.Engine.Matcher.handle_update (Helpers.update "v9 -a-> v9") in
  Alcotest.(check int) "self-loop homomorphism" 1 (Engine.Report.total_matches r)

let test_deletion () =
  let t = Tric.create () in
  Tric.add_query t (Helpers.pattern ~id:11 "?x -a-> ?y -b-> ?z");
  let e = Engine.Matcher.of_tric t in
  ignore (run_updates e (Helpers.updates [ "v1 -a-> v2"; "v2 -b-> v3" ]));
  Alcotest.(check int) "match present" 1 (List.length (e.Engine.Matcher.current_matches 11));
  ignore (e.Engine.Matcher.handle_update (Helpers.update "- v1 -a-> v2"));
  Alcotest.(check int) "match retracted" 0 (List.length (e.Engine.Matcher.current_matches 11));
  (* Re-adding restores it and is reported as new. *)
  let r = e.Engine.Matcher.handle_update (Helpers.update "v1 -a-> v2") in
  Alcotest.(check int) "re-add re-matches" 1 (Engine.Report.total_matches r)

let test_noop_removal_keeps_caches () =
  (* Removing an absent edge must not invalidate any query's embedding
     cache (the old code bumped a global epoch on every Remove). *)
  let t = Tric.create () in
  Tric.add_query t (Helpers.pattern ~id:1 "?x -a-> ?y -b-> ?z");
  Tric.add_query t (Helpers.pattern ~id:2 "?x -c-> ?y");
  let e = Engine.Matcher.of_tric t in
  ignore (run_updates e (Helpers.updates [ "v1 -a-> v2"; "v2 -b-> v3"; "v1 -c-> v2" ]));
  ignore (e.Engine.Matcher.handle_update (Helpers.update "- v8 -a-> v9"));
  ignore (e.Engine.Matcher.handle_update (Helpers.update "- v1 -zz-> v2"));
  let s = Tric.stats t in
  Alcotest.(check int) "removals counted" 2 s.Tric.removals;
  Alcotest.(check int) "both were no-ops" 2 s.Tric.noop_removals;
  Alcotest.(check int) "nothing evicted" 0 s.Tric.tuples_removed;
  Alcotest.(check int) "no cache invalidated (2 queries x 2 removals)" 4
    s.Tric.invalidations_avoided;
  Alcotest.(check int) "matches intact" 1 (List.length (e.Engine.Matcher.current_matches 1))

let test_removal_per_query_isolation () =
  (* A removal affecting only Q1's views must leave Q2's cache untouched
     and must find its doomed tuples via indexed lookups. *)
  let t = Tric.create () in
  Tric.add_query t (Helpers.pattern ~id:1 "?x -a-> ?y -b-> ?z");
  Tric.add_query t (Helpers.pattern ~id:2 "?x -c-> ?y");
  let e = Engine.Matcher.of_tric t in
  ignore
    (run_updates e
       (Helpers.updates [ "v1 -a-> v2"; "v2 -b-> v3"; "v2 -b-> v4"; "v1 -c-> v2" ]));
  Alcotest.(check int) "Q1 has two matches" 2 (List.length (e.Engine.Matcher.current_matches 1));
  ignore (e.Engine.Matcher.handle_update (Helpers.update "- v1 -a-> v2"));
  let s = Tric.stats t in
  Alcotest.(check bool) "tuples evicted" true (s.Tric.tuples_removed > 0);
  Alcotest.(check int) "Q2's cache survived" 1 s.Tric.invalidations_avoided;
  Alcotest.(check bool) "indexed lookups served the removal" true (s.Tric.delta_probes > 0);
  Alcotest.(check int) "Q1 retracted" 0 (List.length (e.Engine.Matcher.current_matches 1));
  Alcotest.(check int) "Q2 intact" 1 (List.length (e.Engine.Matcher.current_matches 2));
  (* Partial re-add: only the removed edge returns; both chains reappear. *)
  let r = e.Engine.Matcher.handle_update (Helpers.update "v1 -a-> v2") in
  Alcotest.(check int) "re-add restores both chains" 2 (Engine.Report.total_matches r)

let test_reregistration_idempotent () =
  (* Re-adding a query id after removal re-walks the same trie path; the
     registration must not duplicate, or every delta would double-count and
     deletion deltas would desynchronise the cache. *)
  let t = Tric.create () in
  let q () = Helpers.pattern ~id:5 "?x -a-> ?y -b-> ?z" in
  Tric.add_query t (q ());
  Alcotest.(check bool) "removed" true (Tric.remove_query t 5);
  Tric.add_query t (q ());
  let regs =
    Tric_core.Trie.fold_nodes
      (fun n acc -> acc @ Tric_core.Trie.registrations n)
      (Tric.forest t) []
  in
  Alcotest.(check int) "single registration per path" 1 (List.length regs);
  let e = Engine.Matcher.of_tric t in
  let r = run_updates e (Helpers.updates [ "v1 -a-> v2"; "v2 -b-> v3" ]) in
  Alcotest.(check int) "reported once" 1 (Engine.Report.total_matches (List.nth r 1));
  ignore (e.Engine.Matcher.handle_update (Helpers.update "- v2 -b-> v3"));
  Alcotest.(check int) "clean retraction" 0 (List.length (e.Engine.Matcher.current_matches 5));
  (* Stale registrations must not survive id reuse with another pattern. *)
  Alcotest.(check bool) "removed again" true (Tric.remove_query t 5);
  Tric.add_query t (Helpers.pattern ~id:5 "?x -c-> ?y");
  let r = e.Engine.Matcher.handle_update (Helpers.update "v7 -c-> v8") in
  Alcotest.(check int) "new pattern matches" 1 (Engine.Report.total_matches r);
  let r = e.Engine.Matcher.handle_update (Helpers.update "v1 -a-> v2") in
  Alcotest.(check int) "old pattern's edges report nothing" 0 (Engine.Report.total_matches r)

let test_mixed_stream_differential ~cache seed () =
  (* Interleaved add/remove/re-add stream vs the oracle, checking both the
     per-update reports and the full current result after every update. *)
  let st = Helpers.rng seed in
  let queries =
    List.init 6 (fun i ->
        Helpers.random_pattern st ~id:(i + 1) ~elabels:Helpers.elabels
          ~vconsts:Helpers.vconsts ~size:(1 + Random.State.int st 3))
  in
  let live = ref [] in
  let stream =
    List.init 160 (fun _ ->
        match !live with
        | e :: rest when Random.State.int st 100 < 40 ->
          live := rest;
          Tric_graph.Update.remove e
        | _ ->
          let e = Helpers.random_edge st ~elabels:Helpers.elabels ~vconsts:Helpers.vconsts in
          live := e :: !live;
          Tric_graph.Update.add e)
  in
  let oracle = Engine.Matcher.of_naive (Engine.Naive.create ()) in
  let engine = Engine.Matcher.of_tric (Tric.create ~cache ()) in
  List.iter
    (fun q ->
      oracle.Engine.Matcher.add_query q;
      engine.Engine.Matcher.add_query q)
    queries;
  List.iteri
    (fun i u ->
      let expected = oracle.Engine.Matcher.handle_update u in
      let actual = engine.Engine.Matcher.handle_update u in
      Helpers.check_reports_agree
        ~msg:(Format.asprintf "mixed update #%d %a" i Tric_graph.Update.pp u)
        expected actual;
      List.iter
        (fun q ->
          let qid = Pattern.id q in
          let sorted m = List.sort_uniq Tric_rel.Embedding.compare m in
          let exp = sorted (oracle.Engine.Matcher.current_matches qid) in
          let act = sorted (engine.Engine.Matcher.current_matches qid) in
          if
            List.length exp <> List.length act
            || not (List.for_all2 Tric_rel.Embedding.equal exp act)
          then
            Alcotest.failf "current_matches diverged at update #%d %a for Q%d" i
              Tric_graph.Update.pp u qid)
        queries)
    stream

let differential_case ~cache seed () =
  let st = Helpers.rng seed in
  let queries =
    List.init 8 (fun i ->
        Helpers.random_pattern st ~id:(i + 1) ~elabels:Helpers.elabels
          ~vconsts:Helpers.vconsts ~size:(1 + Random.State.int st 3))
  in
  let stream =
    List.init 120 (fun _ ->
        Tric_graph.Update.add
          (Helpers.random_edge st ~elabels:Helpers.elabels ~vconsts:Helpers.vconsts))
  in
  let engine = Engine.Matcher.of_tric (Tric.create ~cache ()) in
  Helpers.differential ~engine ~queries ~stream

let test_batch_cancellation () =
  (* An add/remove pair of the same edge inside one window folds to
     nothing: no state, no report, no base-view residue. *)
  let t = Tric.create () in
  Tric.add_query t (Helpers.pattern ~id:1 "?x -a-> ?y");
  let e = Tric_graph.Edge.of_strings "a" "u" "v" in
  let matches, retractions =
    Tric.handle_batch t [ Tric_graph.Update.add e; Tric_graph.Update.remove e ]
  in
  Alcotest.(check int) "no report" 0 (List.length matches);
  Alcotest.(check int) "no retractions" 0 (List.length retractions);
  Alcotest.(check int) "no state" 0 (List.length (Tric.current_matches t 1));
  Alcotest.(check int) "no view tuples" 0 (Tric.stats t).Tric.view_tuples;
  (* The add folds away against the later remove; the surviving net
     removal is a no-op because the edge was never live. *)
  Alcotest.(check int) "add folded" 1 (Tric.stats t).Tric.batch_cancelled;
  Alcotest.(check int) "net removal was a no-op" 1 (Tric.stats t).Tric.noop_removals

let test_batch_dedup_and_readd () =
  (* Duplicates collapse; add-remove-add nets to a single addition and
     fires the query. *)
  let t = Tric.create ~cache:true () in
  Tric.add_query t (Helpers.pattern ~id:1 "?x -a-> ?y -b-> ?z");
  let ea = Tric_graph.Edge.of_strings "a" "u" "v" in
  let eb = Tric_graph.Edge.of_strings "b" "v" "w" in
  let r =
    Tric.handle_batch t
      [
        Tric_graph.Update.add ea;
        Tric_graph.Update.add ea;
        Tric_graph.Update.remove ea;
        Tric_graph.Update.add ea;
        Tric_graph.Update.add eb;
      ]
  in
  let r = Engine.Report.of_pair r in
  Alcotest.(check (list int)) "query fires once" [ 1 ] (Engine.Report.satisfied_ids r);
  Alcotest.(check int) "one embedding" 1 (List.length (Engine.Report.matches_of r 1));
  Alcotest.(check int) "state matches" 1 (List.length (Tric.current_matches t 1));
  Alcotest.(check int) "three folded away" 3 (Tric.stats t).Tric.batch_cancelled

let test_batch_net_removal () =
  (* A window whose net effect on a live edge is removal destroys the
     match that edge supported. *)
  let t = Tric.create () in
  Tric.add_query t (Helpers.pattern ~id:1 "?x -a-> ?y -b-> ?z");
  ignore (Tric.handle_batch t (Helpers.updates [ "u -a-> v"; "v -b-> w" ]));
  Alcotest.(check int) "match present" 1 (List.length (Tric.current_matches t 1));
  let r =
    Tric.handle_batch t
      [
        Tric_graph.Update.remove (Tric_graph.Edge.of_strings "b" "v" "w");
        Tric_graph.Update.add (Tric_graph.Edge.of_strings "b" "v" "w2");
      ]
  in
  let matches, retractions = r in
  Alcotest.(check (list int)) "new completion reported" [ 1 ] (List.map fst matches);
  Alcotest.(check (list int)) "destroyed match retracted" [ 1 ] (List.map fst retractions);
  Alcotest.(check int) "old match gone, new present" 1
    (List.length (Tric.current_matches t 1))

let test_sharded_matches_sequential () =
  (* Replaying the fig4 scenario (adds then a deletion) on sharded
     engines must reproduce the sequential engine's reports and final
     state, update for update. *)
  let stream =
    Helpers.updates
      [
        "f1 -hasMod-> p1"; "f2 -hasMod-> p2"; "p1 -posted-> pst1";
        "p2 -posted-> pst1"; "p1 -posted-> pst2"; "c1 -reply-> pst2";
        "pst1 -containedIn-> c"; "com1 -hasCreator-> p1";
      ]
    @ [ Tric_graph.Update.remove (Tric_graph.Edge.of_strings "hasMod" "f1" "p1") ]
  in
  let seq = Tric.create () in
  List.iter (Tric.add_query seq) (fig4_queries ());
  let expected =
    List.map (fun u -> Engine.Report.of_pair (Tric.handle_update seq u)) stream
  in
  List.iter
    (fun shards ->
      let t = Tric.create ~shards () in
      Fun.protect
        ~finally:(fun () -> Tric.shutdown t)
        (fun () ->
          List.iter (Tric.add_query t) (fig4_queries ());
          Alcotest.(check int) "num_shards" shards (Tric.num_shards t);
          Alcotest.(check int) "stats report shard count" shards (Tric.stats t).Tric.shards;
          List.iteri
            (fun i u ->
              let got = Engine.Report.of_pair (Tric.handle_update t u) in
              Alcotest.(check bool)
                (Printf.sprintf "shards=%d update %d report" shards i)
                true
                (Engine.Report.equal (List.nth expected i) got))
            stream;
          List.iter
            (fun qid ->
              Alcotest.(check int)
                (Printf.sprintf "shards=%d q%d live matches" shards qid)
                (List.length (Tric.current_matches seq qid))
                (List.length (Tric.current_matches t qid)))
            [ 1; 2; 3; 4 ]))
    [ 2; 4 ]

let test_targeted_dispatch_isolation () =
  (* Owner-targeted dispatch: an op whose edge only matches keys owned by
     shard k must enqueue work on shard k alone — the per-shard op
     counters in [Tric.stats] prove no other shard saw the op.  Four
     all-variable single-edge queries over distinct labels give each
     update exactly one registered generalisation, [(l,?,?)]. *)
  let shards = 4 in
  let labels = [ "la"; "lb"; "lc"; "ld" ] in
  let queries =
    List.mapi
      (fun i l -> Helpers.pattern ~id:(i + 1) (Printf.sprintf "?x -%s-> ?y" l))
      labels
  in
  let t = Tric.create ~shards () in
  Fun.protect
    ~finally:(fun () -> Tric.shutdown t)
    (fun () ->
      List.iter (Tric.add_query t) queries;
      List.iteri
        (fun i q ->
          let qid = i + 1 in
          (* The shard owning this query's sole covering path, derived the
             same way registration derives it: the router's verdict on the
             path's key word. *)
          let owner =
            match Tric.covering_paths t qid with
            | [ p ] -> Route.place ~shards (Path.keys q p)
            | ps -> Alcotest.failf "q%d: expected 1 covering path, got %d" qid (List.length ps)
          in
          let before = (Tric.stats t).Tric.shard_ops in
          let e =
            Helpers.update
              (Printf.sprintf "s%d -%s-> t%d" qid (List.nth labels i) qid)
          in
          ignore (Tric.handle_update t e);
          let after = (Tric.stats t).Tric.shard_ops in
          Array.iteri
            (fun s b ->
              let expected = if s = owner then b + 1 else b in
              Alcotest.(check int)
                (Printf.sprintf "q%d update: shard %d op count" qid s)
                expected after.(s))
            before)
        queries;
      (* Four updates, each routed to exactly one shard: mean fanout 1. *)
      let s = Tric.stats t in
      Alcotest.(check int) "ops routed" 4 s.Tric.ops_routed;
      Alcotest.(check int) "ops dispatched = ops routed (fanout 1)" 4 s.Tric.ops_dispatched)

let test_dispatch_fanout_after_churn () =
  (* Query churn must not leave stale routing: after the last query
     registered under a key is removed, the dispatch masks for that key
     are cleared, so a matching update enqueues work on NO shard — the
     monotone-mask bug would keep broadcasting to the dead owner forever.
     Re-registering a query under the same label must restore routing and
     matching. *)
  let shards = 4 in
  let labels = [ "la"; "lb"; "lc"; "ld" ] in
  let queries =
    List.mapi
      (fun i l -> Helpers.pattern ~id:(i + 1) (Printf.sprintf "?x -%s-> ?y" l))
      labels
  in
  let t = Tric.create ~shards () in
  Fun.protect
    ~finally:(fun () -> Tric.shutdown t)
    (fun () ->
      List.iter (Tric.add_query t) queries;
      (* Warm every route once so the counters have a non-zero baseline. *)
      List.iteri
        (fun i l ->
          ignore (Tric.handle_update t (Helpers.update (Printf.sprintf "w%d -%s-> x%d" i l i))))
        labels;
      (* Churn: q2 was the only query keyed on lb. *)
      Alcotest.(check bool) "remove q2" true (Tric.remove_query t 2);
      let before = (Tric.stats t).Tric.shard_ops in
      let dispatched_before = (Tric.stats t).Tric.ops_dispatched in
      ignore (Tric.handle_update t (Helpers.update "u -lb-> v"));
      let after = (Tric.stats t).Tric.shard_ops in
      Array.iteri
        (fun s b ->
          Alcotest.(check int)
            (Printf.sprintf "post-churn lb update: shard %d untouched" s)
            b after.(s))
        before;
      Alcotest.(check int) "post-churn lb update: fanout 0" dispatched_before
        (Tric.stats t).Tric.ops_dispatched;
      (* Other labels still route to exactly one shard each. *)
      let before = (Tric.stats t).Tric.shard_ops in
      ignore (Tric.handle_update t (Helpers.update "u -la-> v"));
      let after = (Tric.stats t).Tric.shard_ops in
      Alcotest.(check int) "la still routes to one shard" 1
        (Array.fold_left ( + ) 0 after - Array.fold_left ( + ) 0 before);
      (* Re-registering under lb rebuilds the mask: routing and matching
         come back. *)
      let q5 = Helpers.pattern ~id:5 "?x -lb-> ?y" in
      Tric.add_query t q5;
      let before = (Tric.stats t).Tric.shard_ops in
      let matches, _ = Tric.handle_update t (Helpers.update "r -lb-> s") in
      let after = (Tric.stats t).Tric.shard_ops in
      Alcotest.(check int) "re-registered lb routes to one shard" 1
        (Array.fold_left ( + ) 0 after - Array.fold_left ( + ) 0 before);
      Alcotest.(check (list int)) "re-registered lb matches" [ 5 ]
        (List.map fst matches);
      (* The pre-churn lb edge was applied while no lb query existed, so it
         must not have leaked into q5's state. *)
      Alcotest.(check int) "q5 sees only post-registration edges" 1
        (List.length (Tric.current_matches t 5)))

let test_route_place_rejects_empty_word () =
  (* An empty key word has no first key to route on; [place] must reject
     it instead of silently picking a shard (a query registered that way
     would be unreachable by dispatch). *)
  match Route.place ~shards:4 [] with
  | _ -> Alcotest.fail "place must reject an empty key word"
  | exception Invalid_argument _ -> ()

let test_sharded_forest_access () =
  (* [forest] is the single-forest accessor; on a sharded engine callers
     must go through [forests].  Trie ids stay globally unique across
     shard forests so audit evidence can name nodes unambiguously. *)
  let t = Tric.create ~shards:3 () in
  Fun.protect
    ~finally:(fun () -> Tric.shutdown t)
    (fun () ->
      List.iter (Tric.add_query t) (fig4_queries ());
      (match Tric.forest t with
      | _ -> Alcotest.fail "forest must raise on a sharded engine"
      | exception Invalid_argument _ -> ());
      let forests = Tric.forests t in
      Alcotest.(check int) "one forest per shard" 3 (Array.length forests);
      let nids =
        Array.to_list forests
        |> List.concat_map (fun f ->
               Trie.fold_nodes (fun n acc -> Trie.node_id n :: acc) f [])
      in
      Alcotest.(check int)
        "node ids unique across shard forests"
        (List.length nids)
        (List.length (List.sort_uniq Int.compare nids));
      (* All fig6 tries exist somewhere, split across the shards. *)
      Alcotest.(check int)
        "three tries in total" 3
        (Array.fold_left (fun acc f -> acc + Trie.num_tries f) 0 forests);
      Alcotest.(check int) "busy time per shard" 3 (Array.length (Tric.busy_times t));
      (* Shutdown is idempotent. *)
      Tric.shutdown t)

let suite =
  [
    Alcotest.test_case "fig4 covering paths" `Quick test_fig4_covering_paths;
    Alcotest.test_case "fig6 trie sharing" `Quick test_fig6_trie_sharing;
    Alcotest.test_case "fig9 answering walkthrough" `Quick test_fig9_answering;
    Alcotest.test_case "duplicate update" `Quick test_duplicate_update_no_new_matches;
    Alcotest.test_case "cycle query" `Quick test_cycle_query;
    Alcotest.test_case "deletion" `Quick test_deletion;
    Alcotest.test_case "no-op removal keeps caches" `Quick test_noop_removal_keeps_caches;
    Alcotest.test_case "removal per-query isolation" `Quick test_removal_per_query_isolation;
    Alcotest.test_case "idempotent re-registration" `Quick test_reregistration_idempotent;
    Alcotest.test_case "sharded = sequential on fig4 stream" `Quick
      test_sharded_matches_sequential;
    Alcotest.test_case "sharded forest access and node ids" `Quick
      test_sharded_forest_access;
    Alcotest.test_case "targeted dispatch touches owner shard only" `Quick
      test_targeted_dispatch_isolation;
    Alcotest.test_case "dispatch fanout after query churn" `Quick
      test_dispatch_fanout_after_churn;
    Alcotest.test_case "empty key word is unroutable" `Quick
      test_route_place_rejects_empty_word;
    Alcotest.test_case "batch cancellation" `Quick test_batch_cancellation;
    Alcotest.test_case "batch dedup and re-add" `Quick test_batch_dedup_and_readd;
    Alcotest.test_case "batch net removal" `Quick test_batch_net_removal;
    Alcotest.test_case "mixed stream differential (TRIC)" `Quick
      (test_mixed_stream_differential ~cache:false 77);
    Alcotest.test_case "mixed stream differential (TRIC+)" `Quick
      (test_mixed_stream_differential ~cache:true 78);
    Alcotest.test_case "differential vs oracle (TRIC)" `Quick (differential_case ~cache:false 42);
    Alcotest.test_case "differential vs oracle (TRIC) II" `Quick (differential_case ~cache:false 1337);
    Alcotest.test_case "differential vs oracle (TRIC+)" `Quick (differential_case ~cache:true 42);
    Alcotest.test_case "differential vs oracle (TRIC+) II" `Quick (differential_case ~cache:true 2024);
  ]
