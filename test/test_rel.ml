(* Relational substrate tests: tuples, relations (with/without cached
   indexes), embeddings, embedding joins. *)

open Tric_graph
open Tric_rel

let l s = Label.intern s
let tup ss = Array.map l (Array.of_list ss) |> Tuple.make

let test_tuple_basics () =
  let t = tup [ "a"; "b"; "c" ] in
  Alcotest.(check int) "width" 3 (Tuple.width t);
  Alcotest.(check string) "first" "a" (Label.to_string (Tuple.first t));
  Alcotest.(check string) "last" "c" (Label.to_string (Tuple.last t));
  let t' = Tuple.extend t (l "d") in
  Alcotest.(check int) "extended width" 4 (Tuple.width t');
  Alcotest.(check int) "original untouched" 3 (Tuple.width t);
  Alcotest.(check bool) "equal" true (Tuple.equal t (tup [ "a"; "b"; "c" ]));
  Alcotest.(check bool) "unequal" false (Tuple.equal t t')

let test_relation_dedup_and_remove () =
  let r = Relation.create ~width:2 () in
  Alcotest.(check bool) "insert new" true (Relation.insert r (tup [ "a"; "b" ]));
  Alcotest.(check bool) "insert dup" false (Relation.insert r (tup [ "a"; "b" ]));
  Alcotest.(check int) "cardinality" 1 (Relation.cardinality r);
  let fresh = Relation.insert_all r [ tup [ "a"; "b" ]; tup [ "c"; "d" ]; tup [ "c"; "d" ] ] in
  Alcotest.(check int) "insert_all reports new only" 1 (List.length fresh);
  Alcotest.(check bool) "remove" true (Relation.remove r (tup [ "a"; "b" ]));
  Alcotest.(check bool) "remove absent" false (Relation.remove r (tup [ "a"; "b" ]));
  let gone = Relation.remove_all r [ tup [ "a"; "b" ]; tup [ "c"; "d" ]; tup [ "c"; "d" ] ] in
  Alcotest.(check int) "remove_all reports present only" 1 (List.length gone);
  Alcotest.(check bool) "empty" true (Relation.is_empty r);
  Alcotest.check_raises "width check" (Invalid_argument "Relation.insert: width mismatch")
    (fun () -> ignore (Relation.insert r (tup [ "a" ])))

let test_relation_index_modes () =
  let check_probe cache =
    let r = Relation.create ~cache ~width:2 () in
    ignore (Relation.insert_all r [ tup [ "a"; "b" ]; tup [ "a"; "c" ]; tup [ "x"; "y" ] ]);
    let probe = Relation.index_on r ~col:0 in
    Alcotest.(check int) "probe hits" 2 (List.length (probe (l "a")));
    Alcotest.(check int) "probe miss" 0 (List.length (probe (l "zz")));
    (* In caching mode the index must track later mutations. *)
    if cache then begin
      ignore (Relation.insert r (tup [ "a"; "d" ]));
      Alcotest.(check int) "cached index sees insert" 3 (List.length (probe (l "a")));
      ignore (Relation.remove r (tup [ "a"; "b" ]));
      Alcotest.(check int) "cached index sees remove" 2 (List.length (probe (l "a")))
    end
  in
  check_probe false;
  check_probe true;
  (* Rebuild accounting: non-cached rebuilds per call, cached builds once. *)
  let r = Relation.create ~cache:false ~width:2 () in
  ignore (Relation.insert r (tup [ "a"; "b" ]));
  ignore (Relation.index_on r ~col:0 : Relation.probe);
  ignore (Relation.index_on r ~col:0 : Relation.probe);
  Alcotest.(check int) "uncached rebuilds" 2 (Relation.stats_rebuilds r);
  let rc = Relation.create ~cache:true ~width:2 () in
  ignore (Relation.insert rc (tup [ "a"; "b" ]));
  ignore (Relation.index_on rc ~col:0 : Relation.probe);
  ignore (Relation.index_on rc ~col:0 : Relation.probe);
  Alcotest.(check int) "cached builds once" 1 (Relation.stats_rebuilds rc)

let test_probe_scan () =
  let r = Relation.create ~width:2 () in
  ignore (Relation.insert_all r [ tup [ "a"; "b" ]; tup [ "a"; "c" ]; tup [ "z"; "b" ] ]);
  Alcotest.(check int) "probe_scan col0" 2 (List.length (Relation.probe_scan r ~col:0 (l "a")));
  Alcotest.(check int) "probe_scan col1" 2 (List.length (Relation.probe_scan r ~col:1 (l "b")));
  let hits = ref 0 in
  Relation.scan_probing r ~col:0
    (fun hinge -> if Label.equal hinge (l "a") then [ 1; 2 ] else [])
    (fun _t _hit -> incr hits);
  Alcotest.(check int) "scan_probing fan-out" 4 !hits

let test_deletion_indexes () =
  (* probe_prefix / probe_hinge must work and stay maintained in BOTH cache
     modes (deletions never fall back to view scans). *)
  List.iter
    (fun cache ->
      let r = Relation.create ~cache ~width:3 () in
      ignore
        (Relation.insert_all r
           [ tup [ "a"; "b"; "c" ]; tup [ "a"; "b"; "d" ]; tup [ "x"; "b"; "c" ] ]);
      Alcotest.(check int)
        "prefix hits" 2
        (List.length (Relation.probe_prefix r (tup [ "a"; "b" ])));
      Alcotest.(check int)
        "prefix miss" 0
        (List.length (Relation.probe_prefix r (tup [ "a"; "zz" ])));
      Alcotest.(check int)
        "hinge hits" 2
        (List.length (Relation.probe_hinge r ~src:(l "b") ~dst:(l "c")));
      (* Maintained across later mutations, in both modes. *)
      ignore (Relation.insert r (tup [ "a"; "b"; "e" ]));
      Alcotest.(check int)
        "prefix sees insert" 3
        (List.length (Relation.probe_prefix r (tup [ "a"; "b" ])));
      ignore (Relation.remove r (tup [ "a"; "b"; "c" ]));
      Alcotest.(check int)
        "prefix sees remove" 2
        (List.length (Relation.probe_prefix r (tup [ "a"; "b" ])));
      Alcotest.(check int)
        "hinge sees remove" 1
        (List.length (Relation.probe_hinge r ~src:(l "b") ~dst:(l "c")));
      Alcotest.(check bool) "probes counted" true (Relation.stats_delta_probes r >= 6);
      Alcotest.check_raises "prefix width check"
        (Invalid_argument "Relation.probe_prefix: bad prefix width") (fun () ->
          ignore (Relation.probe_prefix r (tup [ "a" ]))))
    [ false; true ]

let test_index_bucket_hygiene () =
  (* Removals must drop emptied buckets instead of leaving ref [] cells
     behind forever. *)
  let r = Relation.create ~cache:true ~width:2 () in
  let probe = Relation.index_on r ~col:0 in
  for i = 0 to 99 do
    ignore (Relation.insert r (tup [ Printf.sprintf "k%d" i; "v" ]))
  done;
  Alcotest.(check int) "one bucket per key" 100 (Relation.stats_index_buckets r);
  for i = 0 to 99 do
    ignore (Relation.remove r (tup [ Printf.sprintf "k%d" i; "v" ]))
  done;
  Alcotest.(check int) "all buckets dropped" 0 (Relation.stats_index_buckets r);
  Alcotest.(check int) "probe after drop" 0 (List.length (probe (l "k0")));
  (* Re-inserting after a drop recreates the bucket. *)
  ignore (Relation.insert r (tup [ "k0"; "v" ]));
  Alcotest.(check int) "bucket recreated" 1 (List.length (probe (l "k0")))

let test_embedding () =
  let e = Embedding.empty 3 in
  Alcotest.(check bool) "not total" false (Embedding.is_total e);
  let e1 = Option.get (Embedding.bind e 0 (l "a")) in
  Alcotest.(check bool) "rebind same ok" true (Embedding.bind e1 0 (l "a") <> None);
  Alcotest.(check bool) "conflict" true (Embedding.bind e1 0 (l "b") = None);
  Alcotest.(check bool) "original immutable" false (Embedding.is_bound e 0);
  let e2 = Option.get (Embedding.bind_tuple e1 ~vids:[| 1; 2 |] (tup [ "x"; "y" ])) in
  Alcotest.(check bool) "total now" true (Embedding.is_total e2);
  (* Repeated vid in the tuple enforces equality. *)
  Alcotest.(check bool) "repeated vid conflict" true
    (Embedding.of_tuple ~width:3 ~vids:[| 0; 0 |] (tup [ "x"; "y" ]) = None);
  Alcotest.(check bool) "repeated vid ok" true
    (Embedding.of_tuple ~width:3 ~vids:[| 0; 0 |] (tup [ "x"; "x" ]) <> None);
  (* Merge. *)
  let a = Option.get (Embedding.of_tuple ~width:3 ~vids:[| 0; 1 |] (tup [ "p"; "q" ])) in
  let b = Option.get (Embedding.of_tuple ~width:3 ~vids:[| 1; 2 |] (tup [ "q"; "r" ])) in
  let m = Option.get (Embedding.merge a b) in
  Alcotest.(check bool) "merge total" true (Embedding.is_total m);
  let b' = Option.get (Embedding.of_tuple ~width:3 ~vids:[| 1; 2 |] (tup [ "zz"; "r" ])) in
  Alcotest.(check bool) "merge conflict" true (Embedding.merge a b' = None)

let embs_of width specs =
  List.map
    (fun pairs ->
      List.fold_left
        (fun e (vid, v) -> Option.get (Embedding.bind e vid (l v)))
        (Embedding.empty width) pairs)
    specs

let test_embjoin () =
  (* Join on shared vid 1. *)
  let left = embs_of 3 [ [ (0, "a"); (1, "h1") ]; [ (0, "b"); (1, "h2") ] ] in
  let right = embs_of 3 [ [ (1, "h1"); (2, "x") ]; [ (1, "h1"); (2, "y") ]; [ (1, "h3"); (2, "z") ] ] in
  let joined = Embjoin.join left right in
  Alcotest.(check int) "two results" 2 (List.length joined);
  List.iter (fun e -> Alcotest.(check bool) "total" true (Embedding.is_total e)) joined;
  (* Empty side annihilates. *)
  Alcotest.(check int) "empty left" 0 (List.length (Embjoin.join [] right));
  (* No shared vids = cartesian product. *)
  let a = embs_of 2 [ [ (0, "a") ]; [ (0, "b") ] ] in
  let b = embs_of 2 [ [ (1, "x") ]; [ (1, "y") ] ] in
  Alcotest.(check int) "cartesian" 4 (List.length (Embjoin.join a b));
  (* join_many over three operands chained by shared vids. *)
  let o1 = embs_of 4 [ [ (0, "a"); (1, "b") ] ] in
  let o2 = embs_of 4 [ [ (1, "b"); (2, "c") ]; [ (1, "zz"); (2, "c") ] ] in
  let o3 = embs_of 4 [ [ (2, "c"); (3, "d") ] ] in
  let all = Embjoin.join_many [ o1; o2; o3 ] in
  Alcotest.(check int) "three-way join" 1 (List.length all);
  Alcotest.(check int) "join_many with empty operand" 0
    (List.length (Embjoin.join_many [ o1; []; o3 ]));
  Alcotest.(check int) "dedup" 1 (List.length (Embjoin.dedup (o1 @ o1)))

let suite =
  [
    Alcotest.test_case "tuple basics" `Quick test_tuple_basics;
    Alcotest.test_case "relation dedup/remove" `Quick test_relation_dedup_and_remove;
    Alcotest.test_case "relation index modes" `Quick test_relation_index_modes;
    Alcotest.test_case "probe_scan / scan_probing" `Quick test_probe_scan;
    Alcotest.test_case "deletion indexes (prefix/hinge)" `Quick test_deletion_indexes;
    Alcotest.test_case "index bucket hygiene" `Quick test_index_bucket_hygiene;
    Alcotest.test_case "embedding" `Quick test_embedding;
    Alcotest.test_case "embedding joins" `Quick test_embjoin;
  ]
