(* Seeded violation: a pool task captures a module-level client outbox.
   Outboxes are single-writer (the server event loop owns them); pushing
   from a pool task is a cross-domain mutation. *)
let shared = Outbox.create ~soft:4 ~hard:8

let drive pool item =
  let tasks = [| (fun () -> ignore (Outbox.push shared item)) |] in
  Pool.run pool tasks
