(* Seeded violation: this file does not parse. *)
let broken = =
