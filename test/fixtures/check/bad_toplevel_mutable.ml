(* Seeded violation: module-level mutable state in lib/. *)
let cache = Hashtbl.create 64

let remember k v = Hashtbl.replace cache k v
