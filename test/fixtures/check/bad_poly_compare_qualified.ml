(* Seeded violation: qualified polymorphic compare. *)
let biggest a b = if Stdlib.compare a b > 0 then a else b
