(* Clean: the spawning module mutates shared state only under the lock. *)
type t = { lock : Mutex.t; mutable count : int }

let spin t =
  let d = Domain.spawn (fun () -> ()) in
  Mutex.lock t.lock;
  t.count <- t.count + 1;
  Mutex.unlock t.lock;
  Domain.join d
