(* Clean: [compare] here resolves to local definitions, not Stdlib. *)
let compare a b = Int.compare a b

let smaller a b = if compare a b < 0 then a else b

let sorted l =
  let compare (a, _) (b, _) = String.compare a b in
  List.sort compare l
