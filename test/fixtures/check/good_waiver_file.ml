(* check: allow-file poly-equal — fixture demonstrates a file-scoped waiver *)
let has x l = List.mem x l

let lookup k l = List.assoc_opt k l
