(* Seeded violation: a try with a catch-all handler swallows everything,
   including Out_of_memory and Stack_overflow. *)
let parse s = try int_of_string s with _ -> 0
