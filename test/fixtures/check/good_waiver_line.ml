(* Clean: a line-scoped typed waiver excuses the finding on its line. *)
let sorted l = List.sort compare l (* check: allow poly-compare — fixture demonstrates a line waiver *)
