(* Seeded violation: a pool task captures a module-level ref. *)
let hits = ref 0

let drive pool =
  let tasks = [| (fun () -> incr hits) |] in
  Pool.run pool tasks
