(* Seeded violation: unchecked coercion. *)
let coerce (x : int) : string = Obj.magic x
