(* Seeded violation: shard-owned state is consumed outside the Shard API. *)
let steal s = Shard.trie s

let measure s = Trie.size (Shard.trie s)
