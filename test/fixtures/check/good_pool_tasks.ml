(* Clean: pool tasks mutate only state they own (a local array slot per
   task, read back after the run barrier). *)
let drive pool =
  let acc = Array.make 4 0 in
  let tasks = Array.init 4 (fun i () -> acc.(i) <- i) in
  ignore (Pool.run pool tasks);
  acc
