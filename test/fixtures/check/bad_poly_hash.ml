(* Seeded violation: polymorphic structural hash. *)
let bucket x = Hashtbl.hash x mod 16
