(* Seeded violation: the task only calls [note], but [note] reaches a
   shared-mutating helper two hops away. *)
let table : (string, int) Hashtbl.t = Hashtbl.create 16

let record k = Hashtbl.replace table k 1

let note k = record k

let drive pool =
  let tasks = [| (fun () -> note "x") |] in
  Pool.run pool tasks
