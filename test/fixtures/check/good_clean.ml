(* Clean: pure code with typed comparisons. *)
let smaller a b = if Int.compare a b < 0 then a else b

let total l = List.fold_left ( + ) 0 l
