(* Seeded violation: bare [compare] is Stdlib.compare. *)
let sorted l = List.sort compare l
