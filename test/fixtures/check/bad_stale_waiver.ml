(* Seeded violation: waivers that excuse nothing. *)
let twice x = x + x (* check: allow poly-compare — nothing on this line uses compare *)

let thrice x = x * 3 (* check: allow no-such-rule — unknown rule name *)
