(* Clean: functions and suspensions that allocate on demand are not
   module-level mutable state. *)
let make () = Hashtbl.create 8

let table = lazy (Hashtbl.create 8)
