(* Seeded violation: List.mem uses polymorphic equality. *)
let has x l = List.mem x l
