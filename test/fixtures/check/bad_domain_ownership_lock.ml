(* Seeded violation: a module that spawns domains mutates caller-supplied
   state without holding the lock. *)
type t = { mutable count : int }

let spin t =
  let d = Domain.spawn (fun () -> ()) in
  t.count <- t.count + 1;
  Domain.join d
