(* Seeded violation: a row arena reached from outside the rel/trie/shard
   stack — row ids are meaningless beyond the owning shard's arenas. *)
let snoop arena = Rows.read arena 0

let hoard arena ids = List.map (fun r -> Rows.read arena r) ids
