(* Engine-layer tests: report algebra, the engines registry, the stream
   runner (budget, checkpoints, statistics), deletion behaviour across
   engines, and mid-stream query registration. *)

open Tric_graph
module E = Tric_engine

let emb pairs =
  List.fold_left
    (fun e (vid, v) -> Option.get (Tric_rel.Embedding.bind e vid (Label.intern v)))
    (Tric_rel.Embedding.empty 3) pairs

let test_report_algebra () =
  let c = [ (2, [ emb [ (0, "b") ] ]); (1, [ emb [ (0, "a") ]; emb [ (0, "a") ] ]) ] in
  let r = E.Report.of_matches c in
  let n = E.Report.normalise r in
  Alcotest.(check (list int)) "sorted ids" [ 1; 2 ] (E.Report.satisfied_ids n);
  Alcotest.(check int) "dedup inside query" 2 (E.Report.total_matches n);
  Alcotest.(check int) "matches_of known" 1 (List.length (E.Report.matches_of n 2));
  Alcotest.(check int) "matches_of unknown" 0 (List.length (E.Report.matches_of n 9));
  Alcotest.(check bool) "equal mod order" true
    (E.Report.equal r { n with E.Report.matches = List.rev n.E.Report.matches });
  Alcotest.(check bool) "inequal" false
    (E.Report.equal r (E.Report.of_matches [ (1, [ emb [ (0, "zzz") ] ]) ]));
  (* Retractions are part of report equality: the same matches with a
     retraction channel is a different answer. *)
  let with_retraction = { n with E.Report.retractions = [ (1, [ emb [ (0, "a") ] ]) ] } in
  Alcotest.(check bool) "retractions distinguish" false (E.Report.equal r with_retraction);
  Alcotest.(check int) "total_retractions" 1 (E.Report.total_retractions with_retraction);
  Alcotest.(check (list int)) "satisfied_ids ignores retraction-only" [ 1; 2 ]
    (E.Report.satisfied_ids with_retraction)

let test_report_merge_algebra () =
  let ra =
    E.Report.of_pair ([ (1, [ emb [ (0, "a") ] ]) ], [ (2, [ emb [ (1, "x") ] ]) ])
  in
  let rb =
    E.Report.of_pair ([ (1, [ emb [ (0, "b") ] ]); (3, [ emb [ (0, "c") ] ]) ], [])
  in
  let rc =
    E.Report.of_pair
      ([ (1, [ emb [ (0, "a") ] ]) ], [ (2, [ emb [ (1, "x") ]; emb [ (1, "y") ] ]) ])
  in
  let m_left = E.Report.merge [ E.Report.merge [ ra; rb ]; rc ] in
  let m_right = E.Report.merge [ ra; E.Report.merge [ rb; rc ] ] in
  let m_flat = E.Report.merge [ ra; rb; rc ] in
  Alcotest.(check bool) "merge associative (left vs right)" true
    (E.Report.equal m_left m_right);
  Alcotest.(check bool) "merge associative (nested vs flat)" true
    (E.Report.equal m_left m_flat);
  Alcotest.(check bool) "empty is a merge identity" true
    (E.Report.equal (E.Report.merge [ ra; E.Report.empty ]) ra);
  Alcotest.(check bool) "merge with self dedups" true
    (E.Report.equal (E.Report.merge [ ra; ra ]) ra);
  (* normalise is idempotent, structurally: rendering a normalised report
     a second time through normalise changes nothing *)
  let render r = Format.asprintf "%a" E.Report.pp r in
  let n = E.Report.normalise m_flat in
  Alcotest.(check string) "normalise idempotent" (render n)
    (render (E.Report.normalise n));
  (* dedup is per channel: duplicates collapse within matches and within
     retractions, but the same embedding may legitimately sit in both *)
  let e = emb [ (0, "a") ] in
  let dup = E.Report.of_pair ([ (1, [ e; e ]) ], [ (1, [ e; e ]) ]) in
  let dn = E.Report.normalise dup in
  Alcotest.(check int) "matches deduped" 1 (E.Report.total_matches dn);
  Alcotest.(check int) "retractions deduped" 1 (E.Report.total_retractions dn);
  Alcotest.(check int) "embedding kept on both channels" 1
    (List.length (E.Report.retractions_of dn 1))

let test_registry () =
  List.iter
    (fun name ->
      let e = E.Engines.by_name name in
      Alcotest.(check string) ("registry name " ^ name) name e.E.Matcher.name)
    E.Engines.paper_names;
  Alcotest.check_raises "unknown engine"
    (Invalid_argument "Engines.by_name: unknown engine \"nope\"") (fun () ->
      ignore (E.Engines.by_name "nope"));
  (* Every engine handle reports a positive memory footprint and query
     count consistency. *)
  List.iter
    (fun name ->
      let e = E.Engines.by_name name in
      e.E.Matcher.add_query (Helpers.pattern ~id:1 "?x -a-> ?y");
      Alcotest.(check int) (name ^ " query count") 1 (e.E.Matcher.num_queries ());
      Alcotest.(check bool) (name ^ " memory > 0") true (e.E.Matcher.memory_words () > 0);
      Alcotest.(check bool) (name ^ " remove") true (e.E.Matcher.remove_query 1);
      Alcotest.(check bool) (name ^ " remove again") false (e.E.Matcher.remove_query 1))
    ("ISO" :: E.Engines.paper_names)

let test_runner_basics () =
  let queries = [ Helpers.pattern ~id:1 "?x -a-> ?y -b-> ?z" ] in
  let stream =
    Stream.of_updates (Helpers.updates [ "u -a-> v"; "v -b-> w"; "u -a-> v"; "x -b-> y" ])
  in
  let r = E.Runner.run ~engine:(E.Engines.tric ()) ~queries ~stream () in
  Alcotest.(check int) "all processed" 4 r.E.Runner.updates_processed;
  Alcotest.(check bool) "no timeout" false r.E.Runner.timed_out;
  Alcotest.(check int) "one match" 1 r.E.Runner.matches;
  Alcotest.(check int) "one satisfied query" 1 r.E.Runner.satisfied_queries;
  Alcotest.(check bool) "memory measured" true (r.E.Runner.memory_words > 0);
  Alcotest.(check bool) "p50 <= p95 <= max" true
    (r.E.Runner.p50_ms <= r.E.Runner.p95_ms && r.E.Runner.p95_ms <= r.E.Runner.max_ms)

let test_runner_checkpoints () =
  let queries = [ Helpers.pattern ~id:1 "?x -a-> ?y" ] in
  let stream =
    Stream.of_edges (List.init 10 (fun i -> Edge.of_strings "a" (string_of_int i) "t"))
  in
  let r =
    E.Runner.run ~checkpoints:[ 3; 7; 10 ] ~engine:(E.Engines.tric ()) ~queries ~stream ()
  in
  Alcotest.(check (list int)) "checkpoints reached" [ 3; 7; 10 ]
    (List.map fst r.E.Runner.checkpoints);
  let segs = E.Runner.segment_means_ms r in
  Alcotest.(check int) "segments" 3 (List.length segs);
  List.iter (fun (_, m) -> Alcotest.(check bool) "segment mean >= 0" true (m >= 0.0)) segs;
  (* Cumulative times are monotone. *)
  let times = List.map snd r.E.Runner.checkpoints in
  Alcotest.(check bool) "monotone" true (List.sort compare times = times)

let test_runner_budget () =
  (* A deliberately slow engine: the budget must truncate the run. *)
  let slow =
    E.Matcher.make ~name:"SLOW"
      ~add_query:(fun _ -> ())
      ~remove_query:(fun _ -> false)
      ~num_queries:(fun () -> 0)
      ~handle_update:(fun _ ->
        ignore (Unix.select [] [] [] 0.02);
        E.Report.empty)
      ~current_matches:(fun _ -> [])
      ~memory_words:(fun () -> 1)
      ()
  in
  let stream =
    Stream.of_edges (List.init 100 (fun i -> Edge.of_strings "a" (string_of_int i) "t"))
  in
  let r = E.Runner.run ~budget_s:0.1 ~engine:slow ~queries:[] ~stream () in
  Alcotest.(check bool) "timed out" true r.E.Runner.timed_out;
  Alcotest.(check bool) "truncated" true (r.E.Runner.updates_processed < 100)

let deletion_differential mk () =
  (* Interleave additions and deletions; after each update the engine's
     full current result for each query must equal the oracle's. *)
  let st = Helpers.rng 4242 in
  let queries =
    List.init 5 (fun i ->
        Helpers.random_pattern st ~id:(i + 1) ~elabels:Helpers.elabels
          ~vconsts:Helpers.vconsts ~size:(1 + Random.State.int st 2))
  in
  let engine = mk () in
  let oracle = E.Engines.naive () in
  List.iter
    (fun q ->
      engine.E.Matcher.add_query q;
      oracle.E.Matcher.add_query q)
    queries;
  let live = ref [] in
  for step = 1 to 150 do
    let u =
      if !live <> [] && Random.State.int st 100 < 25 then begin
        let e = List.nth !live (Random.State.int st (List.length !live)) in
        live := List.filter (fun e' -> not (Edge.equal e e')) !live;
        Update.remove e
      end
      else begin
        let e = Helpers.random_edge st ~elabels:Helpers.elabels ~vconsts:Helpers.vconsts in
        live := e :: !live;
        Update.add e
      end
    in
    ignore (oracle.E.Matcher.handle_update u);
    ignore (engine.E.Matcher.handle_update u);
    List.iter
      (fun q ->
        let qid = Tric_query.Pattern.id q in
        let expected =
          List.sort Tric_rel.Embedding.compare (oracle.E.Matcher.current_matches qid)
        in
        let got =
          List.sort Tric_rel.Embedding.compare (engine.E.Matcher.current_matches qid)
        in
        if not (List.length expected = List.length got && List.for_all2 Tric_rel.Embedding.equal expected got)
        then
          Alcotest.failf "step %d (%a): query %d state diverged (oracle %d vs %d)" step
            Update.pp u qid (List.length expected) (List.length got))
      queries
  done

let test_windowed_wrapper () =
  let e = E.Engines.windowed ~window:3 (E.Engines.tric ~cache:true ()) in
  Alcotest.(check string) "composite name" "TRIC+/win3" e.E.Matcher.name;
  e.E.Matcher.add_query (Helpers.pattern ~id:1 "?x -a-> ?y");
  Alcotest.(check int) "queries visible" 1 (e.E.Matcher.num_queries ());
  ignore (e.E.Matcher.handle_update (Helpers.update "a1 -a-> t"));
  ignore (e.E.Matcher.handle_update (Helpers.update "a2 -a-> t"));
  ignore (e.E.Matcher.handle_update (Helpers.update "a3 -a-> t"));
  ignore (e.E.Matcher.handle_update (Helpers.update "a4 -a-> t"));
  Alcotest.(check int) "only window retained" 3
    (List.length (e.E.Matcher.current_matches 1));
  Alcotest.(check bool) "stats passthrough" true (e.E.Matcher.stats () <> [])

let test_engine_stats () =
  (* Every engine exposes non-trivial counters after some activity. *)
  List.iter
    (fun name ->
      let e = E.Engines.by_name name in
      e.E.Matcher.add_query (Helpers.pattern ~id:1 "?x -a-> ?y -b-> ?z");
      ignore (e.E.Matcher.handle_update (Helpers.update "u -a-> v"));
      ignore (e.E.Matcher.handle_update (Helpers.update "v -b-> w"));
      let stats = e.E.Matcher.stats () in
      Alcotest.(check bool) (name ^ " has counters") true (stats <> []);
      Alcotest.(check bool)
        (name ^ " counters non-negative")
        true
        (List.for_all (fun (_, v) -> v >= 0) stats))
    E.Engines.paper_names;
  (* TRIC's census is precise: one trie (shared chain), two nodes, one
     query. *)
  let t = Tric_core.Tric.create () in
  Tric_core.Tric.add_query t (Helpers.pattern ~id:1 "?x -a-> ?y -b-> ?z");
  let s = Tric_core.Tric.stats t in
  Alcotest.(check int) "one trie" 1 s.Tric_core.Tric.tries;
  Alcotest.(check int) "two nodes" 2 s.Tric_core.Tric.trie_nodes;
  Alcotest.(check int) "two base views" 2 s.Tric_core.Tric.base_views

let test_runner_empty_stream () =
  let r =
    E.Runner.run
      ~engine:(E.Engines.tric ())
      ~queries:[ Helpers.pattern ~id:1 "?x -a-> ?y" ]
      ~stream:Stream.empty ()
  in
  Alcotest.(check int) "zero processed" 0 r.E.Runner.updates_processed;
  Alcotest.(check bool) "no timeout" false r.E.Runner.timed_out;
  Alcotest.(check (float 1e-9)) "zero mean" 0.0 r.E.Runner.mean_ms;
  (* measure_memory:false skips the heap walk. *)
  let r =
    E.Runner.run ~measure_memory:false
      ~engine:(E.Engines.tric ())
      ~queries:[] ~stream:Stream.empty ()
  in
  Alcotest.(check int) "memory skipped" 0 r.E.Runner.memory_words

let test_percentile () =
  (* Interpolated percentiles: the old truncating rank reported p50 = 2.0
     and p95 = 3.0 on this array. *)
  let s = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "p0 = min" 1.0 (E.Runner.percentile s 0.0);
  Alcotest.(check (float 1e-9)) "p50 interpolates" 2.5 (E.Runner.percentile s 0.5);
  Alcotest.(check (float 1e-9)) "p95 near max" 3.85 (E.Runner.percentile s 0.95);
  Alcotest.(check (float 1e-9)) "p100 = max" 4.0 (E.Runner.percentile s 1.0);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (E.Runner.percentile [||] 0.5);
  Alcotest.(check (float 1e-9)) "singleton" 7.0 (E.Runner.percentile [| 7.0 |] 0.95)

let test_runner_duplicate_checkpoints () =
  (* Duplicate checkpoints (growth figures at high scale collapse several
     onto the same update count) must all be drained by the one update
     that satisfies them, not stranded as spurious timeouts. *)
  let queries = [ Helpers.pattern ~id:1 "?x -a-> ?y" ] in
  let stream =
    Stream.of_edges (List.init 10 (fun i -> Edge.of_strings "a" (string_of_int i) "t"))
  in
  let r =
    E.Runner.run
      ~checkpoints:[ 3; 3; 7; 10; 10 ]
      ~engine:(E.Engines.tric ()) ~queries ~stream ()
  in
  Alcotest.(check (list int)) "all five drained" [ 3; 3; 7; 10; 10 ]
    (List.map fst r.E.Runner.checkpoints)

let test_runner_batched () =
  (* Batched replay: same matches as per-update, batch-straddled
     checkpoints recorded at the batch boundary that crossed them, and the
     call count reflects ceil(total / batch_size). *)
  let queries = [ Helpers.pattern ~id:1 "?x -a-> ?y -b-> ?z" ] in
  let edges =
    List.concat_map
      (fun i ->
        let v = string_of_int i in
        [ Edge.of_strings "a" ("s" ^ v) ("m" ^ v); Edge.of_strings "b" ("m" ^ v) ("t" ^ v) ])
      (List.init 10 Fun.id)
  in
  let stream = Stream.of_edges edges in
  let seq = E.Runner.run ~engine:(E.Engines.tric ()) ~queries ~stream () in
  let bat =
    E.Runner.run ~batch_size:7 ~checkpoints:[ 5; 20 ]
      ~engine:(E.Engines.tric ~cache:true ())
      ~queries ~stream ()
  in
  Alcotest.(check int) "all processed" 20 bat.E.Runner.updates_processed;
  Alcotest.(check int) "ceil(20/7) calls" 3 bat.E.Runner.batches;
  Alcotest.(check int) "same matches as sequential" seq.E.Runner.matches
    bat.E.Runner.matches;
  Alcotest.(check (list int)) "checkpoints at batch boundaries" [ 7; 20 ]
    (List.map fst bat.E.Runner.checkpoints);
  Alcotest.(check bool) "throughput positive" true (bat.E.Runner.throughput_ups > 0.0);
  Alcotest.check_raises "batch_size 0 rejected"
    (Invalid_argument "Runner.run: batch_size must be >= 1") (fun () ->
      ignore
        (E.Runner.run ~batch_size:0 ~engine:(E.Engines.tric ()) ~queries ~stream ()))

let test_midstream_query_addition () =
  (* A query registered mid-stream must see state retained for earlier
     queries with overlapping structure, and must match later updates. *)
  let t = Tric_core.Tric.create () in
  Tric_core.Tric.add_query t (Helpers.pattern ~id:1 "?x -a-> ?y");
  ignore (Tric_core.Tric.handle_update t (Helpers.update "u -a-> v"));
  (* Same structure: seeds from the shared base view. *)
  Tric_core.Tric.add_query t (Helpers.pattern ~id:2 "?x -a-> ?y -b-> ?z");
  Alcotest.(check int) "no match yet" 0 (List.length (Tric_core.Tric.current_matches t 2));
  let r, _ = Tric_core.Tric.handle_update t (Helpers.update "v -b-> w") in
  Alcotest.(check (list int)) "late query fires" [ 2 ] (List.map fst r);
  Alcotest.(check int) "late query state" 1 (List.length (Tric_core.Tric.current_matches t 2))

let suite =
  [
    Alcotest.test_case "report algebra" `Quick test_report_algebra;
    Alcotest.test_case "report merge algebra" `Quick test_report_merge_algebra;
    Alcotest.test_case "engines registry" `Quick test_registry;
    Alcotest.test_case "runner basics" `Quick test_runner_basics;
    Alcotest.test_case "runner checkpoints" `Quick test_runner_checkpoints;
    Alcotest.test_case "runner budget" `Quick test_runner_budget;
    Alcotest.test_case "percentile interpolation" `Quick test_percentile;
    Alcotest.test_case "runner duplicate checkpoints" `Quick
      test_runner_duplicate_checkpoints;
    Alcotest.test_case "runner batched replay" `Quick test_runner_batched;
    Alcotest.test_case "deletion differential (TRIC)" `Quick
      (deletion_differential (fun () -> E.Engines.tric ()));
    Alcotest.test_case "deletion differential (TRIC+)" `Quick
      (deletion_differential (fun () -> E.Engines.tric ~cache:true ()));
    Alcotest.test_case "deletion differential (INV)" `Quick
      (deletion_differential (fun () -> E.Engines.inv ()));
    Alcotest.test_case "deletion differential (INC+)" `Quick
      (deletion_differential (fun () -> E.Engines.inc ~cache:true ()));
    Alcotest.test_case "deletion differential (GraphDB)" `Quick
      (deletion_differential (fun () -> E.Engines.graphdb ()));
    Alcotest.test_case "mid-stream query addition" `Quick test_midstream_query_addition;
    Alcotest.test_case "windowed wrapper" `Quick test_windowed_wrapper;
    Alcotest.test_case "engine stats" `Quick test_engine_stats;
    Alcotest.test_case "runner empty stream" `Quick test_runner_empty_stream;
  ]
