(* Tests for the AST domain-ownership checker (lib/analysis).

   The fixture corpus under fixtures/check is the rule-coverage proof:
   every rule must trip on its seeded violation and stay quiet on the
   clean counterpart.  The inline-snippet tests below are the mutation
   checks from the issue: deleting the lock from a pool-like module, or
   routing a module-level ref into a task closure, must surface as
   domain-ownership findings. *)

module Check = Tric_analysis.Check
module Src = Tric_analysis.Src

let finding_rules (o : Check.outcome) =
  List.sort_uniq String.compare
    (List.map (fun (f : Src.finding) -> f.Src.rule) o.Check.findings)

let pp_outcome (o : Check.outcome) =
  String.concat "; " (List.map Src.pp_finding o.Check.findings)

let check_clean what o =
  Alcotest.(check string) what "" (pp_outcome o)

let has_rule rule o =
  List.exists (String.equal rule) (finding_rules o)

let test_fixture_corpus () =
  Alcotest.(check bool) "fixture corpus self-test" true (Check.self_test "fixtures/check")

(* A miniature pool: a spawning module whose shared-state mutation is
   guarded by the lock iff [locked].  With the lock the scan is clean;
   without it the domain-ownership rule must fire. *)
let minipool ~locked =
  let guard pre = if locked then pre else "" in
  String.concat "\n"
    [
      "type t = { lock : Mutex.t; mutable busy : int }";
      "";
      "let spin t =";
      "  let d = Domain.spawn (fun () -> ()) in";
      "  " ^ guard "Mutex.lock t.lock;";
      "  t.busy <- t.busy + 1;";
      "  " ^ guard "Mutex.unlock t.lock;";
      "  Domain.join d";
      "";
    ]

let test_lock_deletion_flagged () =
  check_clean "locked minipool"
    (Check.analyze_sources [ ("lib/exec/minipool.ml", minipool ~locked:true) ]);
  let dirty =
    Check.analyze_sources [ ("lib/exec/minipool.ml", minipool ~locked:false) ]
  in
  Alcotest.(check bool) "deleting the lock trips domain-ownership" true
    (has_rule "domain-ownership" dirty);
  Alcotest.(check (list string)) "and nothing else" [ "domain-ownership" ]
    (finding_rules dirty)

(* The second seeded mutation from the issue: a toplevel ref reached from
   a Pool.run task closure. *)
let task_src ~shared =
  let state, bump =
    if shared then ("let total = ref 0", "total := !total + 1")
    else ("", "acc.(0) <- acc.(0) + 1")
  in
  String.concat "\n"
    [
      state;
      "";
      "let drive pool =";
      "  let acc = Array.make 1 0 in";
      "  let tasks = [| (fun () -> " ^ bump ^ ") |] in";
      "  ignore (Pool.run pool tasks);";
      "  acc";
      "";
    ]

let test_task_reaches_shared_state () =
  check_clean "task mutating owned state"
    (Check.analyze_sources [ ("bin/fixture/owned.ml", task_src ~shared:false) ]);
  let dirty =
    Check.analyze_sources [ ("bin/fixture/shared.ml", task_src ~shared:true) ]
  in
  Alcotest.(check (list string)) "toplevel ref reached from a task"
    [ "domain-ownership" ] (finding_rules dirty)

let test_shard_escape_scoping () =
  let src = "let peek s = Shard.trie s\n" in
  let outside = Check.analyze_sources [ ("bin/fixture/outsider.ml", src) ] in
  Alcotest.(check (list string)) "outside the coordinator" [ "shard-escape" ]
    (finding_rules outside);
  check_clean "inside the coordinator"
    (Check.analyze_sources [ ("lib/core/tric.ml", src) ])

let test_waiver_used_and_stale () =
  let marker = "check: allow" in
  let waived =
    "let sorted l = List.sort compare l (* " ^ marker ^ " poly-compare -- demo *)\n"
  in
  let o = Check.analyze_sources [ ("bin/fixture/waived.ml", waived) ] in
  check_clean "line waiver suppresses the finding" o;
  (match o.Check.waivers with
  | [ w ] -> Alcotest.(check bool) "waiver marked used" true w.Src.w_used
  | ws -> Alcotest.fail (Printf.sprintf "expected 1 waiver, got %d" (List.length ws)));
  let stale = "let pure x = x (* " ^ marker ^ " poly-hash -- excuses nothing *)\n" in
  Alcotest.(check (list string)) "unused waiver reported stale" [ "stale-waiver" ]
    (finding_rules (Check.analyze_sources [ ("bin/fixture/stale.ml", stale) ]))

let test_rule_table_sane () =
  let names = List.map fst Check.rules in
  Alcotest.(check int) "rule names unique" (List.length names)
    (List.length (List.sort_uniq String.compare names));
  Alcotest.(check bool) "domain-ownership is a rule" true
    (List.mem_assoc "domain-ownership" Check.rules)

let suite =
  [
    Alcotest.test_case "fixture corpus" `Quick test_fixture_corpus;
    Alcotest.test_case "lock deletion is flagged" `Quick test_lock_deletion_flagged;
    Alcotest.test_case "task reaching shared state" `Quick
      test_task_reaches_shared_state;
    Alcotest.test_case "shard-escape scoping" `Quick test_shard_escape_scoping;
    Alcotest.test_case "waivers: used and stale" `Quick test_waiver_used_and_stale;
    Alcotest.test_case "rule table" `Quick test_rule_table_sane;
  ]
