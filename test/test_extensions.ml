(* Tests for the extension features: sliding windows, the pub/sub layer,
   property-graph constraints (§4.3), the Cypher→pattern bridge, and
   dataset persistence. *)

open Tric_graph
module E = Tric_engine

(* -- Window ------------------------------------------------------------------ *)

let test_window_expiry () =
  let w = E.Window.create ~window:2 (E.Engines.tric ()) in
  E.Window.add_query w (Helpers.pattern ~id:1 "?x -a-> ?y -b-> ?z");
  let r = E.Window.handle_update w (Helpers.update "u -a-> v") in
  Alcotest.(check int) "no match" 0 (E.Report.total_matches r);
  let r = E.Window.handle_update w (Helpers.update "v -b-> t") in
  Alcotest.(check int) "chain within window" 1 (E.Report.total_matches r);
  Alcotest.(check int) "two live" 2 (E.Window.live_edges w);
  (* Third edge evicts the first (u-a->v); the chain is then gone. *)
  ignore (E.Window.handle_update w (Helpers.update "zzz -c-> zzz2"));
  Alcotest.(check int) "still two live" 2 (E.Window.live_edges w);
  Alcotest.(check int) "chain expired" 0
    (List.length ((E.Window.engine w).E.Matcher.current_matches 1));
  (* Re-adding the expired edge evicts its old chain partner (the window
     holds only 2 edges), so no match yet... *)
  let r = E.Window.handle_update w (Helpers.update "u -a-> v") in
  Alcotest.(check int) "partner was evicted" 0 (E.Report.total_matches r);
  (* ...until the partner returns too (evicting the unrelated edge). *)
  let r = E.Window.handle_update w (Helpers.update "v -b-> t") in
  Alcotest.(check int) "re-match once both inside window" 1 (E.Report.total_matches r)

let test_window_refresh () =
  let w = E.Window.create ~window:2 (E.Engines.tric ~cache:true ()) in
  E.Window.add_query w (Helpers.pattern ~id:1 "?x -a-> ?y");
  ignore (E.Window.handle_update w (Helpers.update "e1 -a-> t"));
  ignore (E.Window.handle_update w (Helpers.update "e2 -a-> t"));
  (* Refresh e1: it becomes the newest, so the next insertion must evict
     e2, not e1. *)
  ignore (E.Window.handle_update w (Helpers.update "e1 -a-> t"));
  ignore (E.Window.handle_update w (Helpers.update "e3 -a-> t"));
  let matches = (E.Window.engine w).E.Matcher.current_matches 1 in
  let srcs =
    List.filter_map (fun e -> Option.map Label.to_string (Tric_rel.Embedding.get e 0)) matches
    |> List.sort compare
  in
  Alcotest.(check (list string)) "e1 refreshed, e2 evicted" [ "e1"; "e3" ] srcs;
  (* Explicit removal frees a slot. *)
  ignore (E.Window.handle_update w (Helpers.update "- e1 -a-> t"));
  Alcotest.(check int) "one live after explicit remove" 1 (E.Window.live_edges w)

(* -- Notify ------------------------------------------------------------------ *)

let test_notify () =
  let n = E.Notify.create (E.Engines.tric ~cache:true ()) in
  let fired = ref [] in
  let sub1 =
    E.Notify.subscribe n ~name:"chains"
      ~pattern:(Helpers.pattern ~id:99 "?x -a-> ?y -b-> ?z")
      (fun ev -> fired := ("chains", ev.E.Notify.seqno, List.length ev.E.Notify.embeddings) :: !fired)
  in
  let _sub2 =
    E.Notify.subscribe n
      ~pattern:(Helpers.pattern ~id:98 "?x -a-> ?y")
      (fun ev ->
        fired :=
          ( E.Notify.subscription_name ev.E.Notify.subscription,
            ev.E.Notify.seqno,
            List.length ev.E.Notify.embeddings )
          :: !fired)
  in
  Alcotest.(check int) "two subs" 2 (E.Notify.num_subscriptions n);
  let delivered =
    E.Notify.publish_stream n
      (Stream.of_updates (Helpers.updates [ "u -a-> v"; "v -b-> w" ]))
  in
  Alcotest.(check int) "two notifications" 2 delivered;
  Alcotest.(check bool) "chain fired at seq 1" true (List.mem ("chains", 1, 1) !fired);
  Alcotest.(check bool) "single-edge sub fired at seq 0" true
    (List.exists (fun (name, seq, _) -> name = "sub-2" && seq = 0) !fired);
  (* Unsubscribe stops delivery. *)
  Alcotest.(check bool) "unsubscribe" true (E.Notify.unsubscribe n sub1);
  Alcotest.(check bool) "unsubscribe twice" false (E.Notify.unsubscribe n sub1);
  let before = List.length !fired in
  ignore (E.Notify.publish n (Helpers.update "u2 -a-> v2"));
  ignore (E.Notify.publish n (Helpers.update "v -b-> w2"));
  let new_chain_events =
    List.filter (fun (name, _, _) -> name = "chains") !fired |> List.length
  in
  ignore before;
  Alcotest.(check int) "no chain events after unsubscribe" 1 new_chain_events

(* -- Props (§4.3 property graphs) -------------------------------------------- *)

let test_props_filtering () =
  let p = E.Props.create (E.Engines.tric ~cache:true ()) in
  (* "A person flagged as a bot posting to a monitored forum." *)
  let pat = Helpers.pattern ~id:1 "?who -posted-> ?what" in
  E.Props.add_query p ~constraints:[ { E.Props.vid = 0; key = "kind"; value = "bot" } ] pat;
  (* Structure arrives first; the constraint is not yet satisfied. *)
  let r = E.Props.handle_update p (Helpers.update "eve -posted-> spam1") in
  Alcotest.(check int) "blocked by constraint" 0 (E.Report.total_matches r);
  (* Wrong property value: still blocked. *)
  let r = E.Props.set_prop p (Label.intern "eve") "kind" "human" in
  Alcotest.(check int) "wrong value" 0 (E.Report.total_matches r);
  (* The unlocking assertion fires the retained structural match. *)
  let r = E.Props.set_prop p (Label.intern "eve") "kind" "bot" in
  Alcotest.(check int) "unlocked" 1 (E.Report.total_matches r);
  (* Re-asserting must not re-fire. *)
  let r = E.Props.set_prop p (Label.intern "eve") "kind" "bot" in
  Alcotest.(check int) "no duplicate firing" 0 (E.Report.total_matches r);
  (* Property-first order: structure completes later and fires directly. *)
  ignore (E.Props.set_prop p (Label.intern "mallory") "kind" "bot");
  let r = E.Props.handle_update p (Helpers.update "mallory -posted-> spam2") in
  Alcotest.(check int) "property-first order" 1 (E.Report.total_matches r);
  Alcotest.(check int) "current matches filtered" 2
    (List.length (E.Props.current_matches p 1));
  Alcotest.(check (option string)) "get_prop" (Some "bot")
    (E.Props.get_prop p (Label.intern "eve") "kind")

let test_props_unconstrained_passthrough () =
  let p = E.Props.create (E.Engines.tric ()) in
  E.Props.add_query p (Helpers.pattern ~id:5 "?x -a-> ?y");
  let r = E.Props.handle_update p (Helpers.update "u -a-> v") in
  Alcotest.(check int) "passthrough" 1 (E.Report.total_matches r);
  Alcotest.check_raises "bad vid"
    (Invalid_argument "Props.add_query: constraint on unknown vertex id") (fun () ->
      E.Props.add_query p
        ~constraints:[ { E.Props.vid = 9; key = "k"; value = "v" } ]
        (Helpers.pattern ~id:6 "?x -b-> ?y"))

(* -- Cypher bridge ------------------------------------------------------------ *)

let test_pattern_of_cypher () =
  let module C = Tric_graphdb.Continuous in
  let pat =
    C.pattern_of_cypher ~id:7
      "MATCH (f)-[:hasMod]->(p)-[:posted]->(x {name: 'pst1'}), (c {name: 'com1'})-[:reply]->(x) RETURN f"
  in
  Alcotest.(check int) "edges" 3 (Tric_query.Pattern.num_edges pat);
  (* Run it through TRIC. *)
  let t = Tric_core.Tric.create () in
  Tric_core.Tric.add_query t pat;
  ignore (Tric_core.Tric.handle_update t (Helpers.update "f1 -hasMod-> p1"));
  ignore (Tric_core.Tric.handle_update t (Helpers.update "p1 -posted-> pst1"));
  let r, _ = Tric_core.Tric.handle_update t (Helpers.update "com1 -reply-> pst1") in
  Alcotest.(check int) "cypher-authored query matches" 1
    (List.fold_left (fun n (_, l) -> n + List.length l) 0 r);
  (* Left arrow direction. *)
  let pat2 = C.pattern_of_cypher ~id:8 "MATCH (a)<-[:likes]-(b) RETURN a" in
  let e = (Tric_query.Pattern.edges pat2).(0) in
  Alcotest.(check string) "reversed edge" "b"
    (Format.asprintf "%a" Tric_query.Term.pp (Tric_query.Pattern.term pat2 e.Tric_query.Pattern.src)
    |> fun s -> String.sub s 1 (String.length s - 1));
  Alcotest.check_raises "WHERE rejected"
    (Tric_graphdb.Cypher.Parse_error "pattern_of_cypher: WHERE clauses are not supported")
    (fun () ->
      ignore (C.pattern_of_cypher ~id:9 "MATCH (a)-[:x]->(b) WHERE a.k = 1 RETURN a"))

(* -- Dataset persistence ------------------------------------------------------ *)

let test_dataset_roundtrip () =
  let module W = Tric_workloads in
  let d =
    W.Dataset.make W.Dataset.Taxi
      { W.Dataset.edges = 500; qdb = 20; avg_len = 4; selectivity = 0.3; overlap = 0.3; seed = 13 }
  in
  let path = Filename.temp_file "tric_dataset" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      W.Dataset.save d path;
      let d' = W.Dataset.load path in
      Alcotest.(check string) "name" d.W.Dataset.name d'.W.Dataset.name;
      Alcotest.(check int) "stream length" (Stream.length d.W.Dataset.stream)
        (Stream.length d'.W.Dataset.stream);
      Alcotest.(check bool) "updates identical" true
        (List.for_all2 Update.equal
           (Stream.to_list d.W.Dataset.stream)
           (Stream.to_list d'.W.Dataset.stream));
      Alcotest.(check int) "query count" (List.length d.W.Dataset.queries)
        (List.length d'.W.Dataset.queries);
      (* Loaded queries behave identically: replay both through TRIC+. *)
      let run queries =
        let e = E.Engines.tric ~cache:true () in
        let r = E.Runner.run ~engine:e ~queries ~stream:d.W.Dataset.stream () in
        (r.E.Runner.matches, r.E.Runner.satisfied_queries)
      in
      let m, s = run d.W.Dataset.queries and m', s' = run d'.W.Dataset.queries in
      Alcotest.(check int) "same matches" m m';
      Alcotest.(check int) "same satisfied" s s')

let test_pattern_to_string_roundtrip () =
  let st = Helpers.rng 99 in
  for i = 1 to 50 do
    let p =
      Helpers.random_pattern st ~id:i ~elabels:Helpers.elabels ~vconsts:Helpers.vconsts
        ~size:(1 + Random.State.int st 4)
    in
    let text = Tric_query.Parse.pattern_to_string p in
    let p' = Tric_query.Parse.pattern ~id:i text in
    Alcotest.(check int) "same edge count" (Tric_query.Pattern.num_edges p)
      (Tric_query.Pattern.num_edges p');
    Alcotest.(check string) "stable render" text (Tric_query.Parse.pattern_to_string p')
  done

let suite =
  [
    Alcotest.test_case "window expiry" `Quick test_window_expiry;
    Alcotest.test_case "window refresh" `Quick test_window_refresh;
    Alcotest.test_case "notify pub/sub" `Quick test_notify;
    Alcotest.test_case "props constraint phase" `Quick test_props_filtering;
    Alcotest.test_case "props passthrough/validation" `Quick test_props_unconstrained_passthrough;
    Alcotest.test_case "cypher bridge" `Quick test_pattern_of_cypher;
    Alcotest.test_case "dataset save/load" `Quick test_dataset_roundtrip;
    Alcotest.test_case "pattern_to_string round-trip" `Quick test_pattern_to_string_roundtrip;
  ]
