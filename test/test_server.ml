(* Subscription-server tests: framing codec, wire protocol, outbox
   semantics, live in-process sessions, and the kill -9 torture run
   against the real binary. *)

open Tric_server
module E = Tric_engine

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.equal (String.sub hay i m) needle || go (i + 1)) in
  go 0

(* -- frame codec ------------------------------------------------------------- *)

(* Drain every complete frame the decoder currently holds. *)
let rec drain_dec dec acc =
  match Frame.next dec with
  | Ok (Some p) -> drain_dec dec (p :: acc)
  | Ok None -> List.rev acc
  | Error e -> Alcotest.failf "decoder poisoned: %s" e

let feed_str dec s =
  let b = Bytes.of_string s in
  Frame.feed dec b 0 (Bytes.length b)

let test_frame_split_reassembly () =
  let payloads = [ ""; "a"; "hello world"; String.make 100_000 'x'; "\x00\xff\ttail\n" ] in
  let stream = String.concat "" (List.map Frame.encode payloads) in
  (* Worst case: the stream arrives one byte at a time. *)
  let dec = Frame.decoder () in
  let got = ref [] in
  String.iter
    (fun c ->
      feed_str dec (String.make 1 c);
      got := !got @ drain_dec dec [])
    stream;
  Alcotest.(check (list string)) "byte-by-byte reassembly" payloads !got;
  Alcotest.(check int) "nothing left buffered" 0 (Frame.pending dec);
  (* And in one gulp: several frames per feed. *)
  let dec = Frame.decoder () in
  feed_str dec stream;
  Alcotest.(check (list string)) "all frames in one feed" payloads (drain_dec dec [])

let test_frame_oversized_poisons () =
  let dec = Frame.decoder ~max_frame:16 () in
  feed_str dec (Frame.encode (String.make 16 'y'));
  Alcotest.(check (list string)) "at the cap is fine" [ String.make 16 'y' ]
    (drain_dec dec []);
  feed_str dec (Frame.encode (String.make 17 'z'));
  (match Frame.next dec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized frame accepted");
  (* Permanently poisoned: later well-formed bytes change nothing. *)
  feed_str dec (Frame.encode "ok");
  match Frame.next dec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decoder recovered from poison"

let test_frame_garbage_header () =
  let dec = Frame.decoder () in
  feed_str dec "\xff\xff\xff\xff";
  match Frame.next dec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage length prefix accepted"

let qcheck_frame_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"frame roundtrip under random chunking"
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 8) (string_size (int_range 0 64)))
        (list_size (int_range 1 16) (int_range 1 23)))
    (fun (payloads, cuts) ->
      let stream = String.concat "" (List.map Frame.encode payloads) in
      let dec = Frame.decoder () in
      let got = ref [] in
      let pos = ref 0 and cut = ref 0 in
      let ncuts = List.length cuts in
      while !pos < String.length stream do
        let n = min (List.nth cuts (!cut mod ncuts)) (String.length stream - !pos) in
        incr cut;
        feed_str dec (String.sub stream !pos n);
        pos := !pos + n;
        got := !got @ drain_dec dec []
      done;
      List.equal String.equal payloads !got)

(* -- wire protocol ----------------------------------------------------------- *)

let gen_msg =
  QCheck2.Gen.(
    let str = string_size (int_range 0 24) in
    let emb = list_size (int_range 0 4) (pair small_nat str) in
    let entry =
      map
        (fun (qid, matches, retractions) -> { Wire.qid; matches; retractions })
        (triple small_nat (list_size (int_range 0 3) emb) (list_size (int_range 0 3) emb))
    in
    oneof
      [
        map2 (fun cid last_seen -> Wire.Hello { cid; last_seen }) str (int_range (-1) 1000);
        map2 (fun name pattern -> Wire.Register { name; pattern }) str str;
        map (fun qid -> Wire.Unregister { qid }) int;
        map (fun useq -> Wire.Ack { useq }) int;
        map2 (fun pseq update -> Wire.Publish { pseq; update }) int str;
        map (fun format -> Wire.Stats { format }) str;
        return Wire.Quit;
        map2
          (fun (cid, reset) (cursor, useq) -> Wire.Welcome { cid; cursor; useq; reset })
          (pair str str) (pair int int);
        map (fun qid -> Wire.Registered { qid }) int;
        map2 (fun qid existed -> Wire.Unregistered { qid; existed }) int bool;
        map2 (fun useq entries -> Wire.Notify { useq; entries }) int
          (list_size (int_range 0 4) entry);
        map2 (fun pseq useq -> Wire.Puback { pseq; useq }) int int;
        map (fun body -> Wire.Stats_reply { body }) str;
        map (fun reason -> Wire.Bye { reason }) str;
        map (fun reason -> Wire.Err { reason }) str;
      ])

let qcheck_wire_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"wire roundtrip" gen_msg (fun m ->
      match Wire.decode (Wire.encode m) with Ok m' -> m = m' | Error _ -> false)

let test_wire_rejects_malformed () =
  let reject what s =
    match Wire.decode s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "decoded %s" what
  in
  reject "empty payload" "";
  reject "bad version" "\x02\x07";
  reject "unknown tag" "\x01\x63";
  let enc = Wire.encode (Wire.Welcome { cid = "abc"; cursor = 3; useq = 9; reset = "" }) in
  (* Every proper prefix is a truncation; every extension is trailing
     garbage. *)
  for n = 0 to String.length enc - 1 do
    reject (Printf.sprintf "truncation to %d byte(s)" n) (String.sub enc 0 n)
  done;
  reject "trailing garbage" (enc ^ "z")

(* -- outbox ------------------------------------------------------------------ *)

let emb_a : Wire.emb = [ (0, "u1"); (1, "v") ]
let emb_b : Wire.emb = [ (0, "u2"); (1, "v") ]

let match_item useq e : Outbox.item =
  { Outbox.useq; entries = [ { Wire.qid = 1; matches = [ e ]; retractions = [] } ] }

let retract_item useq e : Outbox.item =
  { Outbox.useq; entries = [ { Wire.qid = 1; matches = []; retractions = [ e ] } ] }

let useq_of = function Some i -> i.Outbox.useq | None -> -1

let test_outbox_basic () =
  let t = Outbox.create ~soft:4 ~hard:8 in
  List.iter
    (fun u -> Alcotest.(check bool) "push ok" true (Outbox.push t (match_item u emb_a) = `Ok))
    [ 1; 2; 3 ];
  Alcotest.(check int) "depth" 3 (Outbox.depth t);
  Alcotest.(check int) "unsent" 3 (Outbox.unsent t);
  Alcotest.(check int) "first out" 1 (useq_of (Outbox.take_to_send t));
  Alcotest.(check int) "sent but retained" 3 (Outbox.depth t);
  (* Ack drops retained items and leaves the send pointer sane. *)
  Outbox.ack t 1;
  Alcotest.(check int) "acked item dropped" 2 (Outbox.depth t);
  Alcotest.(check int) "second out" 2 (useq_of (Outbox.take_to_send t));
  Alcotest.(check int) "third out" 3 (useq_of (Outbox.take_to_send t));
  Alcotest.(check bool) "drained" true (Outbox.take_to_send t = None);
  (* Rewind re-sends everything after the resume cursor. *)
  Outbox.rewind t 1;
  Alcotest.(check int) "rewound unsent" 2 (Outbox.unsent t);
  Alcotest.(check int) "resent from cursor" 2 (useq_of (Outbox.take_to_send t));
  Outbox.ack t 3;
  Alcotest.(check int) "all acked" 0 (Outbox.depth t);
  Alcotest.(check int) "hwm sticks" 3 (Outbox.hwm t);
  (* Items with no entries are never queued. *)
  Alcotest.(check bool) "empty item ok" true (Outbox.push t { Outbox.useq = 9; entries = [] } = `Ok);
  Alcotest.(check int) "empty item not queued" 0 (Outbox.depth t)

let test_outbox_coalesce () =
  let t = Outbox.create ~soft:1 ~hard:10 in
  ignore (Outbox.push t (match_item 1 emb_a));
  ignore (Outbox.push t (match_item 2 emb_b));
  (* Past the soft cap a retraction annihilates the matching unsent
     match; the pair never reaches the subscriber. *)
  ignore (Outbox.push t (retract_item 3 emb_b));
  Alcotest.(check int) "one pair coalesced" 1 (Outbox.coalesced t);
  let remaining = Outbox.items t in
  Alcotest.(check (list int)) "only the un-coalesced match remains" [ 1 ]
    (List.map (fun i -> i.Outbox.useq) remaining);
  Alcotest.(check int) "take skips hollowed items" 1 (useq_of (Outbox.take_to_send t));
  (* Sent items are off-limits to coalescing — exactly-once resend must
     still see them — so this retraction queues normally. *)
  ignore (Outbox.push t (retract_item 4 emb_a));
  Alcotest.(check int) "sent match not coalesced" 1 (Outbox.coalesced t);
  Alcotest.(check (list int)) "retraction of a sent match queued" [ 1; 4 ]
    (List.map (fun i -> i.Outbox.useq) (Outbox.items t));
  Alcotest.(check int) "then the retraction goes out" 4 (useq_of (Outbox.take_to_send t))

let test_outbox_overflow () =
  let t = Outbox.create ~soft:1 ~hard:2 in
  Alcotest.(check bool) "1st ok" true (Outbox.push t (match_item 1 emb_a) = `Ok);
  Alcotest.(check bool) "2nd ok" true (Outbox.push t (match_item 2 emb_b) = `Ok);
  Alcotest.(check bool) "hard cap refuses" true
    (Outbox.push t (match_item 3 emb_a) = `Overflow);
  Alcotest.(check int) "dropped, not queued" 2 (Outbox.depth t);
  (match Outbox.create ~soft:0 ~hard:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "soft=0 accepted");
  match Outbox.create ~soft:4 ~hard:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "hard < soft accepted"

let test_outbox_snapshot_roundtrip () =
  let t = Outbox.create ~soft:4 ~hard:8 in
  List.iter (fun u -> ignore (Outbox.push t (match_item u emb_a))) [ 1; 2; 3 ];
  ignore (Outbox.take_to_send t);
  let t' = Outbox.of_items ~soft:4 ~hard:8 (Outbox.items t) in
  Alcotest.(check int) "depth restored" 3 (Outbox.depth t');
  Alcotest.(check int) "everything unsent again" 3 (Outbox.unsent t');
  Alcotest.(check (list int)) "same items in order" [ 1; 2; 3 ]
    (List.map (fun i -> i.Outbox.useq) (Outbox.items t'))

(* -- live in-process server -------------------------------------------------- *)

let fresh_paths name =
  let dir = Filename.get_temp_dir_name () in
  let tag = Printf.sprintf "%s_%d" name (Unix.getpid ()) in
  ( Filename.concat dir (Printf.sprintf "tric_%s.sock" tag),
    Filename.concat dir (Printf.sprintf "tric_%s.journal" tag) )

let cleanup_paths (sock, journal) =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ sock; journal; journal ^ ".snap"; journal ^ ".snap.tmp" ]

(* Run [f sock journal] against an in-process server on its own domain;
   [f] is responsible for stopping it (Quit) — the finally is a backstop. *)
let with_server ?(snapshot_every = 0) ?(outbox_soft = 64) ?(outbox_hard = 256) name f =
  let sock, journal = fresh_paths name in
  cleanup_paths (sock, journal);
  let cfg =
    {
      (Server.default_config ~sock_path:sock ~journal_path:journal) with
      Server.snapshot_every;
      outbox_soft;
      outbox_hard;
    }
  in
  let t = Server.create cfg in
  let d = Domain.spawn (fun () -> Server.serve t) in
  Fun.protect
    ~finally:(fun () ->
      Server.request_stop t;
      Domain.join d;
      cleanup_paths (sock, journal))
    (fun () -> f sock journal)

(* Wait for the Puback of [pseq], collecting any Notifys that arrive
   before it on the same connection. *)
let publish_wait cl pseq update =
  Client.send cl (Wire.Publish { pseq; update });
  let rec go notifies =
    match Client.recv_exn ~timeout_s:10.0 cl with
    | Wire.Puback { pseq = p; useq } ->
      Alcotest.(check int) "puback echoes pseq" pseq p;
      (List.rev notifies, useq)
    | Wire.Notify { useq; entries } -> go ((useq, entries) :: notifies)
    | m -> Alcotest.failf "unexpected reply to publish: %s" (Wire.encode m |> String.escaped)
  in
  go []

let register_wait cl name pattern =
  Client.send cl (Wire.Register { name; pattern });
  match Client.recv_exn ~timeout_s:10.0 cl with
  | Wire.Registered { qid } -> qid
  | Wire.Err { reason } -> Alcotest.failf "register rejected: %s" reason
  | _ -> Alcotest.fail "unexpected reply to register"

let test_server_basic_session () =
  with_server "basic" (fun sock _journal ->
      let cl = Client.connect sock in
      let cursor, useq0, reset = Client.hello cl "alice" in
      Alcotest.(check int) "fresh cursor" 0 cursor;
      Alcotest.(check int) "fresh useq" 0 useq0;
      Alcotest.(check string) "no reset" "" reset;
      let qid = register_wait cl "edges" "?x -a-> ?y" in
      Alcotest.(check int) "same pattern, same qid" qid
        (register_wait cl "edges2" "?x -a-> ?y");
      let _, useq = publish_wait cl 7 "u -a-> v" in
      Alcotest.(check int) "useq advanced" 1 useq;
      (* The Puback is written before the outbox pump runs, so the
         notification follows it. *)
      (match Client.recv_exn ~timeout_s:10.0 cl with
      | Wire.Notify { useq = 1; entries = [ e ] } ->
        Alcotest.(check int) "notify names the query" qid e.Wire.qid;
        Alcotest.(check int) "one new match" 1 (List.length e.Wire.matches);
        Alcotest.(check int) "no retractions" 0 (List.length e.Wire.retractions)
      | _ -> Alcotest.fail "expected exactly one notify for the match");
      (* The retraction flows on the second channel. *)
      ignore (publish_wait cl 8 "- u -a-> v");
      (match Client.recv_exn ~timeout_s:10.0 cl with
      | Wire.Notify { useq = 2; entries = [ e ] } ->
        Alcotest.(check int) "no new matches" 0 (List.length e.Wire.matches);
        Alcotest.(check int) "one retraction" 1 (List.length e.Wire.retractions)
      | _ -> Alcotest.fail "expected exactly one retraction notify");
      (* A non-matching update is acked but notifies nobody. *)
      let _, useq = publish_wait cl 9 "u -c-> v" in
      Alcotest.(check int) "silent update still sequenced" 3 useq;
      (match Client.recv ~timeout_s:0.3 cl with
      | None -> ()
      | Some _ -> Alcotest.fail "silent update produced a notification");
      Client.send cl (Wire.Ack { useq = 3 });
      (* A second distinct pattern gets its own qid; unregistering it twice
         reports existence honestly. *)
      let qid2 = register_wait cl "pairs" "?x -b-> ?y" in
      Alcotest.(check bool) "distinct qid" true (qid2 <> qid);
      Client.send cl (Wire.Unregister { qid = qid2 });
      (match Client.recv_exn ~timeout_s:10.0 cl with
      | Wire.Unregistered { qid = q; existed } ->
        Alcotest.(check int) "unregistered qid" qid2 q;
        Alcotest.(check bool) "existed" true existed
      | _ -> Alcotest.fail "expected Unregistered");
      Client.send cl (Wire.Unregister { qid = qid2 });
      (match Client.recv_exn ~timeout_s:10.0 cl with
      | Wire.Unregistered { existed; _ } -> Alcotest.(check bool) "gone" false existed
      | _ -> Alcotest.fail "expected Unregistered");
      (* Stats in both formats. *)
      Client.send cl (Wire.Stats { format = "prometheus" });
      (match Client.recv_exn ~timeout_s:10.0 cl with
      | Wire.Stats_reply { body } ->
        Alcotest.(check bool) "prometheus text" true
          (contains body "srv_useq")
      | _ -> Alcotest.fail "expected Stats_reply");
      Client.send cl (Wire.Stats { format = "json" });
      (match Client.recv_exn ~timeout_s:10.0 cl with
      | Wire.Stats_reply { body } ->
        Alcotest.(check bool) "envelope json" true
          (contains body "tric-metrics-v1")
      | _ -> Alcotest.fail "expected Stats_reply");
      Client.send cl Wire.Quit;
      (match Client.recv_exn ~timeout_s:10.0 cl with
      | Wire.Bye _ -> ()
      | _ -> Alcotest.fail "expected Bye");
      Client.close cl)

let test_server_overflow_evicts () =
  with_server "overflow" ~outbox_soft:1 ~outbox_hard:2 (fun sock _journal ->
      let bob = Client.connect sock in
      ignore (Client.hello bob "bob");
      ignore (register_wait bob "q" "?x -a-> ?y");
      let pub = Client.connect sock in
      (* Three unacked notifications against a hard cap of two: the third
         push overflows and bob is evicted. *)
      List.iteri
        (fun i u -> ignore (publish_wait pub (i + 1) u))
        [ "u1 -a-> v"; "u2 -a-> v"; "u3 -a-> v" ];
      let rec read_to_bye seen =
        match Client.recv_exn ~timeout_s:10.0 bob with
        | Wire.Bye { reason } ->
          Alcotest.(check string) "eviction names the cause" "overflow" reason;
          seen
        | Wire.Notify { useq; _ } -> read_to_bye (useq :: seen)
        | _ -> Alcotest.fail "unexpected message before Bye"
      in
      let delivered = read_to_bye [] in
      Alcotest.(check bool) "undelivered work was dropped" true (List.length delivered <= 2);
      Client.close bob;
      (* The next hello gets a clean slate and is told why. *)
      let bob2 = Client.connect sock in
      let _, _, reset = Client.hello bob2 "bob" in
      Alcotest.(check string) "welcome carries the eviction cause" "overflow" reset;
      (* Subscriptions were reset: a new publish notifies nothing. *)
      let notifies, _ = publish_wait pub 4 "u4 -a-> v" in
      Alcotest.(check int) "no notify to publisher" 0 (List.length notifies);
      (match Client.recv ~timeout_s:0.3 bob2 with
      | None -> ()
      | Some _ -> Alcotest.fail "evicted client still subscribed after reset");
      Client.send pub Wire.Quit;
      Client.close bob2;
      Client.close pub)

let test_server_resume_exactly_once () =
  with_server "resume" (fun sock _journal ->
      let pub = Client.connect sock in
      let carol = Client.connect sock in
      ignore (Client.hello carol "carol");
      ignore (register_wait carol "q" "?x -a-> ?y");
      ignore (publish_wait pub 1 "u1 -a-> v");
      (match Client.recv_exn ~timeout_s:10.0 carol with
      | Wire.Notify { useq = 1; _ } -> ()
      | _ -> Alcotest.fail "expected first notify");
      Client.send carol (Wire.Ack { useq = 1 });
      (* Carol drops off without closing the books; the stream keeps
         flowing, including a publisher resend of u2 (a set-semantics
         no-op that must not produce a duplicate notification). *)
      Client.close carol;
      ignore (publish_wait pub 2 "u2 -a-> v");
      ignore (publish_wait pub 3 "u3 -a-> v");
      ignore (publish_wait pub 2 "u2 -a-> v");
      (* On resume from her cursor she gets exactly the missed window. *)
      let carol2 = Client.connect sock in
      let cursor, _, reset = Client.hello ~last_seen:1 carol2 "carol" in
      Alcotest.(check int) "cursor at resume token" 1 cursor;
      Alcotest.(check string) "not a reset" "" reset;
      let missed =
        List.map
          (fun _ ->
            match Client.recv_exn ~timeout_s:10.0 carol2 with
            | Wire.Notify { useq; entries } -> (useq, entries)
            | _ -> Alcotest.fail "expected replayed notify")
          [ (); () ]
      in
      Alcotest.(check (list int)) "missed window replayed in order" [ 2; 3 ]
        (List.map fst missed);
      (match Client.recv ~timeout_s:0.3 carol2 with
      | None -> ()
      | Some _ -> Alcotest.fail "replay overshot the pending window");
      (* Acking through the replay empties the pending window: a fresh
         resume has nothing to deliver. *)
      Client.send carol2 (Wire.Ack { useq = 3 });
      Client.close carol2;
      let carol3 = Client.connect sock in
      let cursor, _, _ = Client.hello ~last_seen:3 carol3 "carol" in
      Alcotest.(check int) "cursor advanced" 3 cursor;
      (match Client.recv ~timeout_s:0.3 carol3 with
      | None -> ()
      | Some _ -> Alcotest.fail "acked notifications redelivered");
      Client.send carol3 Wire.Quit;
      Client.close carol3;
      Client.close pub)

(* -- kill -9 torture against the real binary --------------------------------- *)

let cli_path () =
  let d = Filename.dirname Sys.executable_name in
  Filename.concat (Filename.concat d Filename.parent_dir_name)
    (Filename.concat "bin" "tric_cli.exe")

let norm_entry (e : Wire.entry) =
  let cmp_pair (a, b) (c, d) =
    match Int.compare a c with 0 -> String.compare b d | n -> n
  in
  let cmp_emb x y = List.compare cmp_pair x y in
  {
    e with
    Wire.matches = List.sort cmp_emb e.Wire.matches;
    retractions = List.sort cmp_emb e.Wire.retractions;
  }

let norm_entries es = List.map norm_entry es

(* Pull every notification currently deliverable on [cl] (bounded by
   [timeout_s] of quiet), tolerating the peer dying mid-read. *)
let drain_notifies ?(timeout_s = 0.3) cl =
  let rec go acc =
    match Client.recv ~timeout_s cl with
    | Some (Wire.Notify { useq; entries }) -> go ((useq, entries) :: acc)
    | Some _ -> go acc
    | None -> List.rev acc
    | exception End_of_file -> List.rev acc
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> List.rev acc
  in
  go []

let test_server_torture () =
  let bin = cli_path () in
  if not (Sys.file_exists bin) then
    Alcotest.failf "tric_cli.exe not built next to the test binary (%s)" bin;
  let dir = Filename.temp_file "tric_torture" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let sock = Filename.concat dir "s.sock" in
  let journal = Filename.concat dir "j.log" in
  let server_log = Filename.concat dir "server.log" in
  let start_server () =
    let log =
      Unix.openfile server_log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
    in
    let pid =
      Unix.create_process bin
        [|
          bin; "serve"; "--socket"; sock; "--journal"; journal; "--shards"; "4";
          "--snapshot-every"; "40";
        |]
        Unix.stdin log log
    in
    Unix.close log;
    pid
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f ->
          let p = Filename.concat dir f in
          if Sys.file_exists p then Sys.remove p)
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      (* The workload: seeded adds with periodic removals of live edges,
         over a vocabulary small enough to force shared structure. *)
      let st = Helpers.rng 7 in
      let nodes = [| "n1"; "n2"; "n3"; "n4"; "n5" |] in
      let labels = [| "a"; "b" |] in
      let pick a = a.(Random.State.int st (Array.length a)) in
      let live = ref [] in
      let total = 160 in
      let updates =
        List.init total (fun i ->
            if (i + 1) mod 4 = 0 && !live <> [] then begin
              let e = List.nth !live (Random.State.int st (List.length !live)) in
              live := List.filter (fun x -> not (String.equal x e)) !live;
              "- " ^ e
            end
            else begin
              let e = Printf.sprintf "%s -%s-> %s" (pick nodes) (pick labels) (pick nodes) in
              if not (List.exists (String.equal e) !live) then live := e :: !live;
              e
            end)
      in
      let patterns =
        [
          ("s0", [ "?x -a-> ?y" ]);
          ("s1", [ "?x -a-> ?y -b-> ?z"; "?x -b-> ?y" ]);
          ("s2", [ "?x -b-> ?y" ]);
          ("s3", [ "?x -a-> ?y" ]);
        ]
      in
      let pid = ref (start_server ()) in
      let subs =
        List.map
          (fun (cid, pats) ->
            let cl = Client.connect sock in
            ignore (Client.hello cl cid);
            let qids = List.map (fun p -> register_wait cl cid p) pats in
            (cid, ref cl, qids, ref []))
          patterns
      in
      (* s0 and s3 share a pattern — the server must dedupe the query. *)
      (match subs with
      | (_, _, [ q0 ], _) :: _ ->
        let _, _, q3, _ = List.nth subs 3 in
        Alcotest.(check (list int)) "shared pattern shares its qid" [ q0 ] q3
      | _ -> Alcotest.fail "unexpected subscription shape");
      let pub = ref (Client.connect sock) in
      let drain_all ?timeout_s () =
        List.iter
          (fun (_, cl, _, got) -> got := !got @ drain_notifies ?timeout_s !cl)
          subs
      in
      let publish_one i u =
        ignore (publish_wait !pub i u);
        if i mod 8 = 0 then drain_all ~timeout_s:0.05 ();
        if i mod 16 = 0 then
          List.iter
            (fun (_, cl, _, got) ->
              match List.rev !got with
              | (useq, _) :: _ -> Client.send !cl (Wire.Ack { useq })
              | [] -> ())
            subs
      in
      let kill_at = 90 in
      List.iteri (fun i u -> if i + 1 <= kill_at then publish_one (i + 1) u) updates;
      (* The crash: one more update goes out with no Puback awaited, then
         kill -9.  Whether or not it landed, the resend below must leave
         every subscriber with exactly one copy. *)
      let inflight = List.nth updates kill_at in
      Client.send !pub (Wire.Publish { pseq = kill_at + 1; update = inflight });
      Unix.kill !pid Sys.sigkill;
      ignore (Unix.waitpid [] !pid);
      (* Collect whatever made it into the socket buffers pre-crash. *)
      drain_all ();
      (try Client.close !pub with Unix.Unix_error _ -> ());
      (* Restart and resume: subscriptions must survive without
         re-registering; each client resumes from the last useq it saw. *)
      pid := start_server ();
      List.iter
        (fun (cid, cl, _, got) ->
          (try Client.close !cl with Unix.Unix_error _ -> ());
          let c = Client.connect sock in
          let last_seen =
            match List.rev !got with (useq, _) :: _ -> useq | [] -> -1
          in
          let _, _, reset = Client.hello ~last_seen c cid in
          Alcotest.(check string) (cid ^ " not evicted across crash") "" reset;
          cl := c)
        subs;
      pub := Client.connect sock;
      (* Publisher redelivers the unacked in-flight update, then finishes
         the stream. *)
      List.iteri
        (fun i u -> if i + 1 > kill_at then publish_one (i + 1) u)
        updates;
      drain_all ~timeout_s:0.5 ();
      (* Graceful shutdown so the journal closes cleanly. *)
      Client.send !pub Wire.Quit;
      (match Client.recv_exn ~timeout_s:10.0 !pub with
      | Wire.Bye _ -> ()
      | _ -> Alcotest.fail "expected Bye");
      ignore (Unix.waitpid [] !pid);
      (try Client.close !pub with Unix.Unix_error _ -> ());
      List.iter (fun (_, cl, _, _) -> try Client.close !cl with Unix.Unix_error _ -> ()) subs;
      (* Oracle: a sequential engine over the same logical stream.  The
         resent update is applied once here — set semantics made the
         server's second application a silent no-op. *)
      let oracle = E.Engines.tric ~cache:true () in
      let qid_of = Hashtbl.create 8 in
      List.iter
        (fun (_, _, qids, _) -> List.iter (fun q -> Hashtbl.replace qid_of q ()) qids)
        subs;
      List.iter
        (fun (cid, pats) ->
          let _, _, qids, _ = List.find (fun (c, _, _, _) -> String.equal c cid) subs in
          List.iter2
            (fun p qid ->
              if Hashtbl.mem qid_of qid then begin
                Hashtbl.remove qid_of qid;
                oracle.E.Matcher.add_query (Helpers.pattern ~name:cid ~id:qid p)
              end)
            pats qids)
        patterns;
      let expected = Hashtbl.create 8 in
      List.iter (fun (cid, _, _, _) -> Hashtbl.replace expected cid []) subs;
      List.iter
        (fun u ->
          let r = oracle.E.Matcher.handle_update (Helpers.update u) in
          List.iter
            (fun (cid, _, qids, _) ->
              let entries =
                List.filter_map
                  (fun qid ->
                    let ms = E.Report.matches_of r qid in
                    let rs = E.Report.retractions_of r qid in
                    if ms = [] && rs = [] then None
                    else
                      Some
                        {
                          Wire.qid;
                          matches = List.map Wire.of_embedding ms;
                          retractions = List.map Wire.of_embedding rs;
                        })
                  (List.sort Int.compare qids)
              in
              if entries <> [] then
                Hashtbl.replace expected cid (entries :: Hashtbl.find expected cid))
            subs)
        updates;
      (* Exactly-once, in order, bit-for-bit content: each subscriber's
         pre-crash + post-resume stream equals the oracle's, with strictly
         increasing useqs and no duplicates or gaps. *)
      List.iter
        (fun (cid, _, _, got) ->
          let useqs = List.map fst !got in
          let rec strictly_inc = function
            | a :: (b :: _ as tl) -> a < b && strictly_inc tl
            | _ -> true
          in
          Alcotest.(check bool) (cid ^ " useqs strictly increase") true (strictly_inc useqs);
          let actual = List.map (fun (_, es) -> norm_entries es) !got in
          let want = List.rev_map norm_entries (Hashtbl.find expected cid) in
          Alcotest.(check int)
            (Printf.sprintf "%s stream length (%d notifications)" cid (List.length want))
            (List.length want) (List.length actual);
          if actual <> want then Alcotest.failf "%s stream diverges from the oracle" cid)
        subs;
      (* The journal compacted: recovery is snapshot + bounded tail, far
         fewer records than the stream, and the recovered state is
         audit-clean. *)
      let j = E.Journal.open_ ~path:journal (fun () -> E.Engines.tric ~cache:true ()) in
      Alcotest.(check bool) "snapshot exists" true (E.Journal.has_snapshot j);
      let log_text =
        let ic = open_in_bin server_log in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let snapshot_lines =
        List.length
          (List.filter (fun l -> contains l "written to") (String.split_on_char '\n' log_text))
      in
      Alcotest.(check bool)
        (Printf.sprintf "compacted repeatedly (%d snapshots logged)" snapshot_lines)
        true (snapshot_lines >= 2);
      Alcotest.(check bool)
        (Printf.sprintf "replay bounded by the tail (%d records)" (E.Journal.recovered j))
        true
        (E.Journal.recovered j < 100);
      Alcotest.(check bool) "state restored from snapshot" true (E.Journal.restored j > 0);
      let eng = E.Journal.engine j in
      let findings = eng.E.Matcher.audit None in
      if not (Tric_audit.Audit.is_clean findings) then
        Alcotest.failf "recovered server state unclean:@.%a" Tric_audit.Audit.pp_report
          findings;
      E.Journal.close j)

let suite =
  [
    Alcotest.test_case "frame split-read reassembly" `Quick test_frame_split_reassembly;
    Alcotest.test_case "frame oversized poisons decoder" `Quick test_frame_oversized_poisons;
    Alcotest.test_case "frame garbage header rejected" `Quick test_frame_garbage_header;
    QCheck_alcotest.to_alcotest qcheck_frame_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_wire_roundtrip;
    Alcotest.test_case "wire rejects malformed input" `Quick test_wire_rejects_malformed;
    Alcotest.test_case "outbox retain/ack/rewind" `Quick test_outbox_basic;
    Alcotest.test_case "outbox coalesces under soft backpressure" `Quick test_outbox_coalesce;
    Alcotest.test_case "outbox overflow at hard cap" `Quick test_outbox_overflow;
    Alcotest.test_case "outbox snapshot roundtrip" `Quick test_outbox_snapshot_roundtrip;
    Alcotest.test_case "server basic session" `Quick test_server_basic_session;
    Alcotest.test_case "server evicts on overflow" `Quick test_server_overflow_evicts;
    Alcotest.test_case "server exactly-once resume" `Quick test_server_resume_exactly_once;
    Alcotest.test_case "server kill -9 torture" `Slow test_server_torture;
  ]
