(* Workload generator tests: determinism, size contracts, vertex/edge
   growth ratios, query-set parameters (selectivity, overlap, classes). *)

open Tric_graph
open Tric_workloads
module Engine = Tric_engine

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same sequence" (Rng.int a 1000) (Rng.int b 1000)
  done;
  let c = Rng.create 43 in
  let distinct = ref false in
  for _ = 1 to 20 do
    if Rng.int a 1000 <> Rng.int c 1000 then distinct := true
  done;
  Alcotest.(check bool) "different seeds differ" true !distinct

let test_zipf_skew () =
  let rng = Rng.create 7 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let k = Rng.zipf rng ~n:100 ~s:1.0 in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 100);
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "rank0 beats rank50" true (counts.(0) > 4 * max 1 counts.(50))

(* The expected vertex/edge ratio comes from the paper's figure axes and
   is size-dependent, so each generator is checked at a size where the
   paper reports a reference point. *)
let check_stream_generator ~name ~generate ~edges ~ratio_lo ~ratio_hi () =
  let s1 = generate ~seed:11 ~edges in
  let s2 = generate ~seed:11 ~edges in
  Alcotest.(check int) (name ^ " exact size") edges (Stream.length s1);
  Alcotest.(check bool)
    (name ^ " deterministic") true
    (List.for_all2 Update.equal (Stream.to_list s1) (Stream.to_list s2));
  let g = Stream.final_graph s1 in
  let ratio = float_of_int (Graph.num_vertices g) /. float_of_int (Graph.num_edges g) in
  if ratio < ratio_lo || ratio > ratio_hi then
    Alcotest.failf "%s vertex/edge ratio %.3f outside [%.2f, %.2f]" name ratio ratio_lo
      ratio_hi

let test_biogrid_single_label () =
  let s = Biogrid.generate ~seed:3 ~edges:1_000 in
  Stream.iter
    (fun u ->
      Alcotest.(check string) "single label" "interacts"
        (Label.to_string (Update.edge u).Edge.label))
    s

let dataset_small () =
  Dataset.make Dataset.Snb
    {
      Dataset.edges = 3_000;
      qdb = 60;
      avg_len = 4;
      selectivity = 0.25;
      overlap = 0.35;
      seed = 5;
    }

let test_dataset_shape () =
  let d = dataset_small () in
  Alcotest.(check int) "query count" 60 (List.length d.Dataset.queries);
  Alcotest.(check bool) "stream at least base size" true (Stream.length d.Dataset.stream >= 3_000);
  (* Average query length near avg_len. *)
  let total_edges =
    List.fold_left
      (fun n q -> n + Tric_query.Pattern.num_edges q)
      0 d.Dataset.queries
  in
  let avg = float_of_int total_edges /. 60.0 in
  if avg < 2.0 || avg > 6.0 then Alcotest.failf "average query length %.2f out of range" avg;
  (* Unique ids. *)
  let ids = List.map Tric_query.Pattern.id d.Dataset.queries in
  Alcotest.(check int) "ids unique" 60 (List.length (List.sort_uniq compare ids))

let test_dataset_selectivity () =
  (* Replay the dataset through TRIC+ and compare the fraction of queries
     with at least one match against σ. *)
  let d = dataset_small () in
  let eng = Engine.Matcher.of_tric (Tric_core.Tric.create ~cache:true ()) in
  List.iter eng.Engine.Matcher.add_query d.Dataset.queries;
  let satisfied = Hashtbl.create 64 in
  Stream.iter
    (fun u ->
      List.iter
        (fun (qid, _) -> Hashtbl.replace satisfied qid ())
        (eng.Engine.Matcher.handle_update u).Engine.Report.matches)
    d.Dataset.stream;
  let frac = float_of_int (Hashtbl.length satisfied) /. 60.0 in
  (* σ = 0.25; generation is randomized per query so allow a wide band, but
     it must be clearly neither 0 nor 1. *)
  if frac < 0.08 || frac > 0.6 then
    Alcotest.failf "satisfied fraction %.2f too far from sigma=0.25" frac

let test_dataset_overlap_effect () =
  (* Higher overlap must yield fewer trie nodes for the same query count. *)
  let make overlap =
    let d =
      Dataset.make Dataset.Snb
        { Dataset.edges = 3_000; qdb = 120; avg_len = 4; selectivity = 0.25; overlap; seed = 5 }
    in
    let t = Tric_core.Tric.create () in
    List.iter (Tric_core.Tric.add_query t) d.Dataset.queries;
    (Tric_core.Tric.stats t).Tric_core.Tric.trie_nodes
  in
  let low = make 0.05 and high = make 0.75 in
  if not (high < low) then
    Alcotest.failf "expected fewer trie nodes with higher overlap (low=%d high=%d)" low high

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    (* Paper reference points: SNB 57K vertices at 100K edges; TAXI 44K at
       100K; BioGRID 17.2K at 100K (Figs. 12(a), 14(a), 14(b) axes). *)
    Alcotest.test_case "snb stream" `Quick
      (check_stream_generator ~name:"snb" ~generate:Snb.generate ~edges:100_000
         ~ratio_lo:0.38 ~ratio_hi:0.70);
    Alcotest.test_case "taxi stream" `Quick
      (check_stream_generator ~name:"taxi" ~generate:Taxi.generate ~edges:100_000
         ~ratio_lo:0.30 ~ratio_hi:0.55);
    Alcotest.test_case "biogrid stream" `Quick
      (check_stream_generator ~name:"biogrid" ~generate:Biogrid.generate ~edges:100_000
         ~ratio_lo:0.10 ~ratio_hi:0.25);
    Alcotest.test_case "biogrid single label" `Quick test_biogrid_single_label;
    Alcotest.test_case "dataset shape" `Quick test_dataset_shape;
    Alcotest.test_case "dataset selectivity" `Quick test_dataset_selectivity;
    Alcotest.test_case "dataset overlap effect" `Quick test_dataset_overlap_effect;
  ]
