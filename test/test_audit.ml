(* Mutation tests for the invariant-audit sanitizer: a clean engine must
   report zero findings, and each corruption hook — every one breaks a
   different invariant class — must be detected as exactly that class.
   This is what makes the audit layer trustworthy: a checker that cannot
   see planted corruption proves nothing when it reports clean. *)

open Tric_graph
open Tric_core
module Audit = Tric_audit.Audit
module Rel = Tric_rel.Relation

let queries () =
  [
    Helpers.pattern ~name:"chain" ~id:1 "?x -a-> ?y; ?y -b-> ?z";
    Helpers.pattern ~name:"edge" ~id:2 "?x -a-> ?y";
    Helpers.pattern ~name:"anchored" ~id:3 "v1 -a-> ?y; ?y -c-> ?z";
  ]

(* A small mixed add/remove/re-add replay touching every query. *)
let script =
  [
    "v1 -a-> v2";
    "v2 -b-> v3";
    "v2 -c-> v4";
    "v5 -a-> v2";
    "- v1 -a-> v2";
    "v1 -a-> v2";
    "v4 -a-> v5";
    "- v5 -a-> v2";
  ]

let build ?(cache = true) ?(shards = 1) () =
  let t = Tric.create ~cache ~shards () in
  List.iter (Tric.add_query t) (queries ());
  let live = Edge.Tbl.create 64 in
  List.iter
    (fun u ->
      ignore (Tric.handle_update t u);
      match u.Update.op with
      | Update.Add e -> Edge.Tbl.replace live e ()
      | Update.Remove e -> Edge.Tbl.remove live e)
    (Helpers.updates script);
  (t, Edge.Tbl.fold (fun e () acc -> e :: acc) live [])

let error_classes findings =
  List.sort_uniq String.compare
    (List.map (fun f -> f.Audit.invariant) (Audit.errors findings))

let check_classes msg expected findings =
  Alcotest.(check (list string)) msg expected (error_classes findings)

let test_clean_zero_findings () =
  List.iter
    (fun cache ->
      let t, edges = build ~cache () in
      let findings = Audit.check ~edges t in
      Alcotest.(check int)
        (Printf.sprintf "cache=%b: zero findings on clean state" cache)
        0 (List.length findings))
    [ false; true ]

let test_skewed_cache_detected () =
  let t, edges = build ~cache:true () in
  Alcotest.(check bool) "cache skewed" true (Tric.Corrupt.skew_path_cache t);
  check_classes "only cache-coherence trips" [ "cache-coherence" ] (Audit.check ~edges t)

let test_dropped_registration_detected () =
  let t, edges = build () in
  Alcotest.(check bool) "registration dropped" true (Tric.Corrupt.drop_registration t);
  check_classes "only registration trips" [ "registration" ] (Audit.check ~edges t)

let test_phantom_view_tuple_detected () =
  let t, edges = build () in
  Alcotest.(check bool) "tuple planted" true (Tric.Corrupt.phantom_view_tuple t);
  check_classes "only view-coherence trips" [ "view-coherence" ] (Audit.check ~edges t)

let test_desynced_engine_stats_detected () =
  let t, edges = build () in
  Tric.Corrupt.desync_stats t;
  check_classes "only stats trips" [ "stats" ] (Audit.check ~edges t)

let test_desynced_relation_counters_detected () =
  let t, edges = build () in
  (match Trie.fold_base (fun _ r acc -> match acc with Some _ -> acc | None -> Some r)
           (Tric.forest t) None
   with
  | Some r -> Rel.Corrupt.desync_counters r
  | None -> Alcotest.fail "no base view");
  check_classes "only stats trips" [ "stats" ] (Audit.check ~edges t)

let test_dropped_index_bucket_detected () =
  let t, edges = build ~cache:true () in
  (* Find any view with a live maintained index and drop one bucket. *)
  let dropped =
    Trie.fold_nodes
      (fun n acc -> acc || Rel.Corrupt.drop_index_bucket (Trie.node_view n))
      (Tric.forest t) false
  in
  let dropped =
    dropped
    || Trie.fold_base
         (fun _ r acc -> acc || Rel.Corrupt.drop_index_bucket r)
         (Tric.forest t) false
  in
  Alcotest.(check bool) "an index bucket was dropped" true dropped;
  check_classes "only index-coherence trips" [ "index-coherence" ]
    (Audit.check ~edges t)

let test_phantom_base_tuple_detected () =
  let t, edges = build () in
  (match Trie.fold_base (fun _ r acc -> match acc with Some _ -> acc | None -> Some r)
           (Tric.forest t) None
   with
  | Some r -> Rel.Corrupt.phantom_tuple r (Tric_rel.Tuple.of_edge (Helpers.edge "zz -zz-> zz"))
  | None -> Alcotest.fail "no base view");
  let classes = error_classes (Audit.check ~edges t) in
  Alcotest.(check bool)
    "base-coherence trips" true
    (List.exists (String.equal "base-coherence") classes)

let test_arena_corruption_detected () =
  (* Packed-arena mutations through a live engine.  A leaked row (live in
     the arena, absent from the relation's dedup set and counters) is
     walked by every content diff, so collateral classes may trip too —
     what matters is that arena-integrity names the root cause.  A
     dangling row id planted in a dedup slot corrupts only the slot
     table, so it must surface as exactly arena-integrity. *)
  let t, edges = build ~cache:true () in
  (match Trie.fold_base (fun _ r acc -> match acc with Some _ -> acc | None -> Some r)
           (Tric.forest t) None
   with
  | Some r -> Alcotest.(check bool) "leak applies" true (Rel.Corrupt.leak_arena_row r)
  | None -> Alcotest.fail "no base view");
  let classes = error_classes (Audit.check ~edges t) in
  Alcotest.(check bool)
    "arena-integrity trips on a leaked row" true
    (List.exists (String.equal "arena-integrity") classes);
  let t, edges = build ~cache:true () in
  let dangled =
    Trie.fold_nodes
      (fun n acc -> acc || Rel.Corrupt.dangle_bucket_row (Trie.node_view n))
      (Tric.forest t) false
  in
  Alcotest.(check bool) "a dedup slot was dangled" true dangled;
  check_classes "only arena-integrity trips" [ "arena-integrity" ]
    (Audit.check ~edges t)

let test_removed_query_warns_only () =
  let t, edges = build () in
  Alcotest.(check bool) "query removed" true (Tric.remove_query t 3);
  let findings = Audit.check ~edges t in
  Alcotest.(check bool) "no errors after remove_query" true (Audit.is_clean findings);
  (* Deregistration prunes branches that held only query 3's registrations
     (and rebuilds the dispatch masks), so no orphan structure survives to
     warn about: the audit is not merely error-free but silent. *)
  Alcotest.(check int) "no hygiene warnings after remove_query" 0 (List.length findings)

let test_sharded_clean_and_misroute_detected () =
  (* A sharded engine audits clean, and a trie re-indexed onto the wrong
     shard trips the routing-coherence invariant.  The misrouted subtree
     also shows up as collateral damage in other classes (its
     registrations and base views now live on a shard the router never
     consults), so this asserts membership, not an exact class list. *)
  let t, edges = build ~shards:2 () in
  Fun.protect
    ~finally:(fun () -> Tric.shutdown t)
    (fun () ->
      Alcotest.(check int)
        "zero findings on clean sharded state" 0
        (List.length (Audit.check ~edges t));
      Alcotest.(check bool)
        "a path was misrouted" true
        (Tric.Corrupt.misroute_path t);
      let classes = error_classes (Audit.check ~edges t) in
      Alcotest.(check bool)
        "routing-coherence trips" true
        (List.exists (String.equal "routing-coherence") classes))

let test_route_bitmap_mutations_detected () =
  (* The dispatch bitmaps are certified against the forests in both
     directions: a cleared bit (router would skip a shard that holds the
     key's nodes — lost updates) and a planted bit (router would dispatch
     to a shard without them — dead work) must each trip exactly the
     routing-coherence class.  Unlike [misroute_path], these mutations
     leave the forests themselves intact, so no collateral classes. *)
  List.iter
    (fun (name, corrupt) ->
      let t, edges = build ~shards:2 () in
      Fun.protect
        ~finally:(fun () -> Tric.shutdown t)
        (fun () ->
          Alcotest.(check bool) (name ^ " applied") true (corrupt t);
          check_classes
            (name ^ ": only routing-coherence trips")
            [ "routing-coherence" ] (Audit.check ~edges t)))
    [
      ("drop_route_bit", Tric.Corrupt.drop_route_bit);
      ("phantom_route_bit", Tric.Corrupt.phantom_route_bit);
    ]

let build_invidx () =
  let i = Tric_baselines.Invidx.create ~cache:true ~mode:Tric_baselines.Invidx.Full () in
  List.iter (Tric_baselines.Invidx.add_query i) (queries ());
  let live = Edge.Tbl.create 64 in
  List.iter
    (fun u ->
      ignore (Tric_baselines.Invidx.handle_update i u);
      match u.Update.op with
      | Update.Add e -> Edge.Tbl.replace live e ()
      | Update.Remove e -> Edge.Tbl.remove live e)
    (Helpers.updates script);
  (i, Edge.Tbl.fold (fun e () acc -> e :: acc) live [])

let test_invidx_clean_and_mutated () =
  let i, edges = build_invidx () in
  Alcotest.(check int)
    "zero findings on clean INV+" 0
    (List.length (Audit.check_invidx ~edges i));
  (match Tric_baselines.Invidx.fold_base
           (fun _ r acc -> match acc with Some _ -> acc | None -> Some r)
           i None
   with
  | Some r -> Rel.Corrupt.phantom_tuple r (Tric_rel.Tuple.of_edge (Helpers.edge "zz -zz-> zz"))
  | None -> Alcotest.fail "no base view");
  let classes =
    List.sort_uniq String.compare
      (List.map (fun f -> f.Audit.invariant) (Audit.check_invidx ~edges i))
  in
  Alcotest.(check bool)
    "base-coherence trips on INV+" true
    (List.exists (String.equal "base-coherence") classes)

let test_invidx_seen_set_divergence () =
  let i, edges = build_invidx () in
  (* A ground-truth edge the engine never saw must surface: the audit's
     edge-set comparison is what anchors everything else to reality. *)
  let edges = Helpers.edge "v9 -a-> v9" :: edges in
  let findings = Audit.check_invidx ~edges i in
  Alcotest.(check bool)
    "missing live edge detected" true
    (List.exists (fun f -> String.equal f.Audit.invariant "base-coherence") findings)

let suite =
  [
    Alcotest.test_case "clean state reports zero findings" `Quick test_clean_zero_findings;
    Alcotest.test_case "skewed path cache detected" `Quick test_skewed_cache_detected;
    Alcotest.test_case "dropped registration detected" `Quick test_dropped_registration_detected;
    Alcotest.test_case "phantom view tuple detected" `Quick test_phantom_view_tuple_detected;
    Alcotest.test_case "desynced engine stats detected" `Quick test_desynced_engine_stats_detected;
    Alcotest.test_case "desynced relation counters detected" `Quick test_desynced_relation_counters_detected;
    Alcotest.test_case "dropped index bucket detected" `Quick test_dropped_index_bucket_detected;
    Alcotest.test_case "phantom base tuple detected" `Quick test_phantom_base_tuple_detected;
    Alcotest.test_case "arena corruption detected" `Quick test_arena_corruption_detected;
    Alcotest.test_case "removed query leaves warnings only" `Quick test_removed_query_warns_only;
    Alcotest.test_case "sharded clean; misrouted path detected" `Quick
      test_sharded_clean_and_misroute_detected;
    Alcotest.test_case "dispatch-bitmap mutations detected" `Quick
      test_route_bitmap_mutations_detected;
    Alcotest.test_case "INV+ clean and mutated" `Quick test_invidx_clean_and_mutated;
    Alcotest.test_case "INV+ seen-set divergence detected" `Quick test_invidx_seen_set_divergence;
  ]
