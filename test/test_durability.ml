(* Journal / recovery and stream-combinator tests. *)

open Tric_graph
module E = Tric_engine

let with_temp f =
  let path = Filename.temp_file "tric_journal" ".log" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; path ^ ".snap"; path ^ ".snap.tmp" ])
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None else if String.equal (String.sub s i m) sub then Some i else go (i + 1)
  in
  go 0

let replace_first s sub by =
  match find_sub s sub with
  | None -> None
  | Some i ->
    Some
      (String.sub s 0 i ^ by
      ^ String.sub s (i + String.length sub) (String.length s - i - String.length sub))

let test_journal_roundtrip () =
  with_temp (fun path ->
      (* Session 1: register a query mid-stream, deliver one match. *)
      let j = E.Journal.open_ ~path (fun () -> E.Engines.tric ~cache:true ()) in
      Alcotest.(check int) "fresh journal" 0 (E.Journal.recovered j);
      E.Journal.add_query j (Helpers.pattern ~id:1 "?x -a-> ?y -b-> ?z");
      ignore (E.Journal.handle_update j (Helpers.update "u -a-> v"));
      E.Journal.add_query j (Helpers.pattern ~id:2 "?x -b-> ?y");
      let r = E.Journal.handle_update j (Helpers.update "v -b-> w") in
      Alcotest.(check (list int)) "both match live" [ 1; 2 ] (E.Report.satisfied_ids r);
      Alcotest.(check int) "entries" 4 (E.Journal.entries j);
      E.Journal.close j;
      (* Session 2: recover; no re-notifications, full state present. *)
      let j2 = E.Journal.open_ ~path (fun () -> E.Engines.tric ~cache:true ()) in
      Alcotest.(check int) "recovered records" 4 (E.Journal.recovered j2);
      let eng = E.Journal.engine j2 in
      Alcotest.(check int) "queries recovered" 2 (eng.E.Matcher.num_queries ());
      Alcotest.(check int) "query 1 state recovered" 1
        (List.length (eng.E.Matcher.current_matches 1));
      (* New updates continue the stream seamlessly. *)
      let r = E.Journal.handle_update j2 (Helpers.update "u2 -a-> v") in
      Alcotest.(check (list int)) "post-recovery match" [ 1 ] (E.Report.satisfied_ids r);
      E.Journal.close j2)

let test_journal_replay_suppresses_duplicates () =
  with_temp (fun path ->
      let j = E.Journal.open_ ~path (fun () -> E.Engines.tric ()) in
      E.Journal.add_query j (Helpers.pattern ~id:1 "?x -a-> ?y");
      ignore (E.Journal.handle_update j (Helpers.update "u -a-> v"));
      E.Journal.close j;
      let j2 = E.Journal.open_ ~path (fun () -> E.Engines.tric ()) in
      (* Replaying the same edge is a duplicate: no new match. *)
      let r = E.Journal.handle_update j2 (Helpers.update "u -a-> v") in
      Alcotest.(check int) "duplicate after recovery silent" 0 (E.Report.total_matches r);
      E.Journal.close j2)

let test_journal_corrupt () =
  with_temp (fun path ->
      (* Interior corruption — a malformed record with more records after
         it — is real damage, not a torn tail, and must fail loudly.  (A
         malformed FINAL record is the torn-tail case, covered below.) *)
      let oc = open_out path in
      output_string oc "garbage line without tabs\n";
      output_string oc "more garbage\n";
      close_out oc;
      Alcotest.check_raises "corrupt journal" (Failure "Journal: malformed line 1")
        (fun () -> ignore (E.Journal.open_ ~path (fun () -> E.Engines.tric ()))))

(* A kill -9 mid-append leaves a partial final record (the newline is the
   last byte of every append, so the clean region ends at the last
   newline).  Recovery must replay the clean prefix, truncate the torn
   bytes so the next append starts on a record boundary, and keep
   accepting appends — on a 4-shard engine, whose recovery exercises the
   domain-parallel replay path too. *)
let test_journal_torn_tail () =
  with_temp (fun path ->
      let j = E.Journal.open_ ~path (fun () -> E.Engines.tric ~cache:true ~shards:4 ()) in
      E.Journal.add_query j (Helpers.pattern ~id:1 "?x -a-> ?y -b-> ?z");
      ignore (E.Journal.handle_update j (Helpers.update "u -a-> v"));
      ignore (E.Journal.handle_update j (Helpers.update "v -b-> w"));
      E.Journal.close j;
      (E.Journal.engine j).E.Matcher.shutdown ();
      let clean_size = (Unix.stat path).Unix.st_size in
      (* The crash: a torn half-record with no trailing newline. *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "U\t+ half -wri";
      close_out oc;
      let j2 = E.Journal.open_ ~path (fun () -> E.Engines.tric ~cache:true ~shards:4 ()) in
      Alcotest.(check int) "clean prefix replayed" 3 (E.Journal.recovered j2);
      Alcotest.(check int) "torn bytes truncated away" clean_size
        (Unix.stat path).Unix.st_size;
      let eng = E.Journal.engine j2 in
      Alcotest.(check int) "state recovered" 1
        (List.length (eng.E.Matcher.current_matches 1));
      (* Appends continue on a clean record boundary... *)
      let r = E.Journal.handle_update j2 (Helpers.update "u -a-> v2") in
      Alcotest.(check int) "post-recovery update accepted" 0 (E.Report.total_matches r);
      E.Journal.close j2;
      eng.E.Matcher.shutdown ();
      (* ...and a third session sees the repaired history plus the new
         record, nothing torn. *)
      let j3 = E.Journal.open_ ~path (fun () -> E.Engines.tric ~cache:true ()) in
      Alcotest.(check int) "repaired history + new record" 4 (E.Journal.recovered j3);
      E.Journal.close j3;
      (* A malformed FINAL record that did get its newline is the same
         crash observed one byte later: torn, truncated, not fatal. *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "garbage final line\n";
      close_out oc;
      let j4 = E.Journal.open_ ~path (fun () -> E.Engines.tric ~cache:true ()) in
      Alcotest.(check int) "malformed final record dropped" 4 (E.Journal.recovered j4);
      E.Journal.close j4)

(* Recovery with a sharded engine: the journal's replay must land the
   4-domain engine in exactly the state the pre-crash run had — audit-clean
   against the ground-truth live edge set, and producing reports
   bit-identical to a sequential engine that replayed the same history. *)
let test_journal_sharded_recovery () =
  with_temp (fun path ->
      let st = Helpers.rng 42 in
      (* Queries come from parse strings — the journal's own on-disk
         pattern representation — so recovery re-registers byte-identical
         queries. *)
      let queries =
        List.mapi
          (fun i s -> Helpers.pattern ~id:(i + 1) s)
          [
            "?x -a-> ?y";
            "?x -a-> ?y -b-> ?z";
            "?x -b-> ?y -c-> ?z -a-> ?w";
            "?x -a-> v1";
            "v2 -b-> ?y";
            "?x -c-> ?y -a-> ?z";
            "?x -a-> ?y -a-> ?z";
            "?x -b-> ?y -b-> ?z";
          ]
      in
      let prefix =
        List.init 120 (fun i ->
            let e = Helpers.random_edge st ~elabels:Helpers.elabels ~vconsts:Helpers.vconsts in
            if i mod 7 = 6 then Update.remove e else Update.add e)
      in
      let tail =
        List.init 30 (fun _ ->
            Update.add (Helpers.random_edge st ~elabels:Helpers.elabels ~vconsts:Helpers.vconsts))
      in
      (* Session 1: sharded engine, queries + prefix, then "crash". *)
      let j = E.Journal.open_ ~path (fun () -> E.Engines.tric ~cache:true ~shards:4 ()) in
      List.iter (E.Journal.add_query j) queries;
      let pre_crash = List.map (E.Journal.handle_update j) prefix in
      E.Journal.close j;
      (E.Journal.engine j).E.Matcher.shutdown ();
      (* Session 2: recover into a fresh 4-shard engine. *)
      let j2 = E.Journal.open_ ~path (fun () -> E.Engines.tric ~cache:true ~shards:4 ()) in
      Alcotest.(check int) "all records recovered"
        (List.length queries + List.length prefix)
        (E.Journal.recovered j2);
      let recovered = E.Journal.engine j2 in
      (* Audit the recovered state against the ground-truth live edges. *)
      let live = Edge.Tbl.create 256 in
      List.iter
        (fun u ->
          match u.Update.op with
          | Update.Add e -> Edge.Tbl.replace live e ()
          | Update.Remove e -> Edge.Tbl.remove live e)
        prefix;
      let edges = Edge.Tbl.fold (fun e () acc -> e :: acc) live [] in
      let findings = recovered.E.Matcher.audit (Some edges) in
      if not (Tric_audit.Audit.is_clean findings) then
        Alcotest.failf "recovered sharded engine unclean:@.%a" Tric_audit.Audit.pp_report
          findings;
      (* Sequential replay of the same history: every pre-crash report,
         every current match set, and every post-recovery report must be
         identical. *)
      let seq = E.Engines.tric ~cache:true () in
      List.iter seq.E.Matcher.add_query queries;
      List.iteri
        (fun i (u, expected) ->
          Helpers.check_reports_agree
            ~msg:(Format.asprintf "pre-crash update #%d %a" i Update.pp u)
            (seq.E.Matcher.handle_update u)
            expected)
        (List.combine prefix pre_crash);
      List.iter
        (fun q ->
          let qid = Tric_query.Pattern.id q in
          let sort = List.sort Tric_rel.Embedding.compare in
          Alcotest.(check bool)
            (Printf.sprintf "query %d matches survive recovery" qid)
            true
            (List.equal Tric_rel.Embedding.equal
               (sort (seq.E.Matcher.current_matches qid))
               (sort (recovered.E.Matcher.current_matches qid))))
        queries;
      List.iteri
        (fun i u ->
          Helpers.check_reports_agree
            ~msg:(Format.asprintf "post-recovery update #%d %a" i Update.pp u)
            (seq.E.Matcher.handle_update u)
            (E.Journal.handle_update j2 u))
        tail;
      E.Journal.close j2;
      recovered.E.Matcher.shutdown ())

(* -- CRC framing ------------------------------------------------------------- *)

(* Silent mid-file corruption: flip payload bytes of an interior record so
   the line still PARSES (it stays a well-formed U record) — only the CRC
   can tell the difference, and it must refuse loudly. *)
let test_journal_crc_detects_bitflip () =
  with_temp (fun path ->
      let j = E.Journal.open_ ~path (fun () -> E.Engines.tric ()) in
      E.Journal.add_query j (Helpers.pattern ~id:1 "?x -a-> ?y");
      ignore (E.Journal.handle_update j (Helpers.update "u -a-> v"));
      ignore (E.Journal.handle_update j (Helpers.update "w -a-> z"));
      E.Journal.close j;
      let content = read_file path in
      (match replace_first content "u -a-> v" "q -a-> v" with
      | Some mutated -> write_file path mutated
      | None -> Alcotest.fail "expected the update text in the journal");
      Alcotest.check_raises "bitflip detected" (Failure "Journal: CRC mismatch on line 2")
        (fun () -> ignore (E.Journal.open_ ~path (fun () -> E.Engines.tric ()))))

(* The same bitflip on the FINAL record is indistinguishable from a torn
   append: truncated away, not fatal. *)
let test_journal_crc_torn_final () =
  with_temp (fun path ->
      let j = E.Journal.open_ ~path (fun () -> E.Engines.tric ()) in
      E.Journal.add_query j (Helpers.pattern ~id:1 "?x -a-> ?y");
      ignore (E.Journal.handle_update j (Helpers.update "u -a-> v"));
      ignore (E.Journal.handle_update j (Helpers.update "w -a-> z"));
      E.Journal.close j;
      let content = read_file path in
      (match replace_first content "w -a-> z" "w -a-> q" with
      | Some mutated -> write_file path mutated
      | None -> Alcotest.fail "expected the update text in the journal");
      let j2 = E.Journal.open_ ~path (fun () -> E.Engines.tric ()) in
      Alcotest.(check int) "clean prefix replayed" 2 (E.Journal.recovered j2);
      (* The corrupt record was truncated: the update is genuinely new. *)
      let r = E.Journal.handle_update j2 (Helpers.update "w -a-> z") in
      Alcotest.(check int) "truncated update re-applies" 1 (E.Report.total_matches r);
      E.Journal.close j2)

(* -- snapshots & compaction --------------------------------------------------- *)

let test_journal_snapshot_compaction () =
  with_temp (fun path ->
      let j = E.Journal.open_ ~path (fun () -> E.Engines.tric ~cache:true ()) in
      E.Journal.add_query j (Helpers.pattern ~id:1 "?x -a-> ?y -b-> ?z");
      E.Journal.add_query j (Helpers.pattern ~id:2 "?x -b-> ?y");
      let st = Helpers.rng 11 in
      let updates =
        List.init 60 (fun i ->
            let e = Helpers.random_edge st ~elabels:Helpers.elabels ~vconsts:Helpers.vconsts in
            if i mod 5 = 4 then Update.remove e else Update.add e)
      in
      List.iter (fun u -> ignore (E.Journal.handle_update j u)) updates;
      Alcotest.(check int) "entries before snapshot" 62 (E.Journal.entries j);
      E.Journal.snapshot j;
      Alcotest.(check int) "journal compacted" 0 (E.Journal.entries j);
      Alcotest.(check bool) "snapshot file exists" true (Sys.file_exists (path ^ ".snap"));
      (* Post-snapshot tail. *)
      let tail =
        List.init 9 (fun _ ->
            Update.add (Helpers.random_edge st ~elabels:Helpers.elabels ~vconsts:Helpers.vconsts))
      in
      List.iter (fun u -> ignore (E.Journal.handle_update j u)) tail;
      E.Journal.close j;
      (* Recovery: replay is bounded by the journal tail, not history. *)
      let j2 = E.Journal.open_ ~path (fun () -> E.Engines.tric ~cache:true ()) in
      Alcotest.(check int) "replay bounded by tail" 9 (E.Journal.recovered j2);
      Alcotest.(check bool) "restored from snapshot" true (E.Journal.restored j2 > 0);
      Alcotest.(check int) "queries restored" 2 (E.Journal.num_queries j2);
      (* Differential: sequential full-history replay = snapshot + tail. *)
      let seq = E.Engines.tric ~cache:true () in
      seq.E.Matcher.add_query (Helpers.pattern ~id:1 "?x -a-> ?y -b-> ?z");
      seq.E.Matcher.add_query (Helpers.pattern ~id:2 "?x -b-> ?y");
      List.iter (fun u -> ignore (seq.E.Matcher.handle_update u)) (updates @ tail);
      let recovered = E.Journal.engine j2 in
      List.iter
        (fun qid ->
          let sort = List.sort Tric_rel.Embedding.compare in
          Alcotest.(check bool)
            (Printf.sprintf "query %d matches survive compaction" qid)
            true
            (List.equal Tric_rel.Embedding.equal
               (sort (seq.E.Matcher.current_matches qid))
               (sort (recovered.E.Matcher.current_matches qid))))
        [ 1; 2 ];
      (* The recovered state is audit-clean against its own live edges. *)
      let findings = recovered.E.Matcher.audit None in
      if not (Tric_audit.Audit.is_clean findings) then
        Alcotest.failf "recovered state unclean:@.%a" Tric_audit.Audit.pp_report findings;
      E.Journal.close j2)

(* Crash window between snapshot rename and journal truncation: the whole
   journal predates the snapshot and must be discarded, not replayed on
   top of the restored state. *)
let test_journal_snapshot_crash_window () =
  with_temp (fun path ->
      let j = E.Journal.open_ ~path (fun () -> E.Engines.tric ()) in
      E.Journal.add_query j (Helpers.pattern ~id:1 "?x -a-> ?y");
      ignore (E.Journal.handle_update j (Helpers.update "u -a-> v @7"));
      ignore (E.Journal.handle_update j (Helpers.update "w -a-> z"));
      let pre_snapshot = read_file path in
      E.Journal.snapshot j;
      E.Journal.close j;
      (* The crash: snapshot on disk, journal never truncated. *)
      write_file path pre_snapshot;
      let j2 = E.Journal.open_ ~path (fun () -> E.Engines.tric ()) in
      Alcotest.(check int) "stale journal discarded" 0 (E.Journal.recovered j2);
      Alcotest.(check int) "state restored once" 3 (E.Journal.restored j2);
      (* Replaying the stale file would have made this a duplicate no-op;
         after a correct recovery the remove retracts a live match. *)
      let r = E.Journal.handle_update j2 (Helpers.update "- u -a-> v") in
      Alcotest.(check int) "live edge retracts" 1 (E.Report.total_retractions r);
      E.Journal.close j2)

let test_journal_corrupt_snapshot () =
  with_temp (fun path ->
      let j = E.Journal.open_ ~path (fun () -> E.Engines.tric ()) in
      E.Journal.add_query j (Helpers.pattern ~id:1 "?x -a-> ?y");
      ignore (E.Journal.handle_update j (Helpers.update "u -a-> v"));
      E.Journal.snapshot j;
      E.Journal.close j;
      let snap = read_file (path ^ ".snap") in
      let mid = String.length snap / 2 in
      let mutated =
        String.mapi (fun i c -> if i = mid then Char.chr (Char.code c lxor 0x20) else c) snap
      in
      write_file (path ^ ".snap") mutated;
      match E.Journal.open_ ~path (fun () -> E.Engines.tric ()) with
      | _ -> Alcotest.fail "corrupt snapshot must not load"
      | exception Failure msg ->
        Alcotest.(check bool)
          (Printf.sprintf "loud failure names the snapshot: %s" msg)
          true
          (Option.is_some (find_sub msg "snapshot")))

(* -- W (remove) and X (aux) records ------------------------------------------- *)

let test_journal_remove_and_aux () =
  with_temp (fun path ->
      let j = E.Journal.open_ ~path (fun () -> E.Engines.tric ()) in
      E.Journal.add_query j (Helpers.pattern ~id:1 "?x -a-> ?y");
      E.Journal.add_query j (Helpers.pattern ~id:2 "?x -b-> ?y");
      E.Journal.log_aux j "C\talice\t0";
      Alcotest.(check bool) "remove known" true (E.Journal.remove_query j 2);
      E.Journal.log_aux j "A\talice\t5";
      Alcotest.check_raises "aux newline rejected"
        (Invalid_argument "Journal.log_aux: payload contains a newline") (fun () ->
          E.Journal.log_aux j "bad\nrecord");
      Alcotest.(check int) "Q/W/X all count" 5 (E.Journal.entries j);
      E.Journal.close j;
      let auxes = ref [] in
      let removed = ref [] in
      let j2 =
        E.Journal.open_ ~path
          ~on_aux:(fun s -> auxes := s :: !auxes)
          ~on_remove:(fun qid -> removed := qid :: !removed)
          (fun () -> E.Engines.tric ())
      in
      Alcotest.(check (list string)) "aux replayed in order" [ "C\talice\t0"; "A\talice\t5" ]
        (List.rev !auxes);
      Alcotest.(check (list int)) "removal replayed" [ 2 ] !removed;
      Alcotest.(check int) "only query 1 left" 1 (E.Journal.num_queries j2);
      (* Aux records survive snapshot compaction via the aux blob. *)
      let j3 =
        E.Journal.open_ ~path
          ~aux_state:(fun () -> "blob-state")
          (fun () -> E.Engines.tric ())
      in
      E.Journal.snapshot j3;
      E.Journal.close j3;
      let restored_blob = ref "" in
      let j4 =
        E.Journal.open_ ~path
          ~restore_aux:(fun s -> restored_blob := s)
          (fun () -> E.Engines.tric ())
      in
      Alcotest.(check string) "aux blob restored" "blob-state" !restored_blob;
      Alcotest.(check int) "nothing to replay after compaction" 0 (E.Journal.recovered j4);
      E.Journal.close j2;
      E.Journal.close j4)

let test_stream_combinators () =
  let e l s d = Update.add (Edge.of_strings l s d) in
  let s1 = Stream.of_updates [ e "a" "1" "2"; e "a" "3" "4" ] in
  let s2 = Stream.of_updates [ e "b" "5" "6" ] in
  let s3 = Stream.of_updates [ e "c" "7" "8"; e "c" "9" "10"; e "c" "11" "12" ] in
  let merged = Stream.interleave [ s1; s2; s3 ] in
  Alcotest.(check int) "all updates" 6 (Stream.length merged);
  (* Round-robin fairness: first round takes one from each stream. *)
  let labels =
    List.map (fun u -> Label.to_string (Update.edge u).Edge.label) (Stream.to_list merged)
  in
  Alcotest.(check (list string)) "fair order" [ "a"; "b"; "c"; "a"; "c"; "c" ] labels;
  (* Per-stream order is preserved. *)
  let c_sources =
    Stream.to_list merged
    |> List.filter_map (fun u ->
           let edge = Update.edge u in
           if Label.to_string edge.Edge.label = "c" then Some (Label.to_string edge.Edge.src)
           else None)
  in
  Alcotest.(check (list string)) "internal order kept" [ "7"; "9"; "11" ] c_sources;
  let only_a =
    Stream.filter (fun u -> Label.to_string (Update.edge u).Edge.label = "a") merged
  in
  Alcotest.(check int) "filter" 2 (Stream.length only_a);
  let flipped =
    Stream.map
      (fun u ->
        let edge = Update.edge u in
        Update.add (Edge.make ~label:edge.Edge.label ~src:edge.Edge.dst ~dst:edge.Edge.src))
      only_a
  in
  Alcotest.(check string) "map" "2"
    (Label.to_string (Update.edge (Stream.get flipped 0)).Edge.src)

let suite =
  [
    Alcotest.test_case "journal round-trip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal duplicate suppression" `Quick test_journal_replay_suppresses_duplicates;
    Alcotest.test_case "journal corruption detected" `Quick test_journal_corrupt;
    Alcotest.test_case "journal torn-tail recovery" `Quick test_journal_torn_tail;
    Alcotest.test_case "journal recovery with 4 shards" `Quick test_journal_sharded_recovery;
    Alcotest.test_case "journal CRC detects bitflip" `Quick test_journal_crc_detects_bitflip;
    Alcotest.test_case "journal CRC torn final record" `Quick test_journal_crc_torn_final;
    Alcotest.test_case "journal snapshot compaction" `Quick test_journal_snapshot_compaction;
    Alcotest.test_case "journal snapshot crash window" `Quick test_journal_snapshot_crash_window;
    Alcotest.test_case "journal corrupt snapshot rejected" `Quick test_journal_corrupt_snapshot;
    Alcotest.test_case "journal remove + aux records" `Quick test_journal_remove_and_aux;
    Alcotest.test_case "stream combinators" `Quick test_stream_combinators;
  ]
