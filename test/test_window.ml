(* Window subsystem tests: eviction retractions riding the triggering
   report (the silent-loss regression), event-time expiry under a
   watermark, lateness handling, tumbling resets, per-spec groups, the
   window-coherence audit class, and the registry/env wiring. *)

open Tric_query
module E = Tric_engine

let wpattern ~id s = Parse.pattern ~id s

(* Regression: [Window.evict_oldest] used to discard the inner engine's
   expiry report, so a match destroyed by the sliding edge of the window
   vanished without a retraction.  The eviction's retractions must ride
   the report of the update that caused it. *)
let test_evict_retraction_reported () =
  let w = E.Window.create ~window:2 (E.Engines.tric ~cache:true ()) in
  E.Window.add_query w (Helpers.pattern ~id:1 "?x -a-> ?y -b-> ?z");
  ignore (E.Window.handle_update w (Helpers.update "u -a-> v"));
  let r = E.Window.handle_update w (Helpers.update "v -b-> t") in
  Alcotest.(check int) "match formed" 1 (E.Report.total_matches r);
  (* The third edge evicts u-a->v and destroys the chain. *)
  let r = E.Window.handle_update w (Helpers.update "zzz -c-> zzz2") in
  Alcotest.(check int) "no new match" 0 (E.Report.total_matches r);
  Alcotest.(check int) "destroyed match retracted" 1 (E.Report.total_retractions r);
  Alcotest.(check (list int)) "retraction names the query" [ 1 ]
    (List.map fst r.E.Report.retractions);
  Alcotest.(check int) "engine state empty" 0
    (List.length (E.Window.current_matches w 1))

let test_time_window_expiry () =
  let w = E.Window.make (fun () -> E.Engines.tric ~cache:true ()) in
  E.Window.add_query w (wpattern ~id:1 "?x -a-> ?y -b-> ?z WITHIN 10s");
  ignore (E.Window.handle_update w (Helpers.update "u -a-> v @100"));
  let r = E.Window.handle_update w (Helpers.update "v -b-> t @105") in
  Alcotest.(check int) "chain within span" 1 (E.Report.total_matches r);
  Alcotest.(check (option int)) "watermark tracks max ts" (Some 105)
    (E.Window.watermark w);
  (* At watermark 112 the @100 edge (deadline 110) expires; the expiry
     retraction rides the unrelated triggering update's report. *)
  let r = E.Window.handle_update w (Helpers.update "q -c-> q2 @112") in
  Alcotest.(check int) "no new match" 0 (E.Report.total_matches r);
  Alcotest.(check int) "expired chain retracted" 1 (E.Report.total_retractions r);
  Alcotest.(check int) "expired edge left the window" 2 (E.Window.live_edges w);
  Alcotest.(check int) "expiry counted" 1 (E.Window.expired_edges w);
  Alcotest.(check int) "one expiry batch" 1 (E.Window.expiry_batches w);
  Alcotest.(check int) "match gone" 0 (List.length (E.Window.current_matches w 1));
  (* A duplicate addition refreshes the deadline: v-b->t re-added at 114
     now lives to 124 and survives the watermark reaching 120. *)
  ignore (E.Window.handle_update w (Helpers.update "v -b-> t @114"));
  ignore (E.Window.handle_update w (Helpers.update "q2 -c-> q3 @120"));
  Alcotest.(check int) "refreshed edge survives" 1 (E.Window.expired_edges w)

let test_late_updates () =
  let w = E.Window.make ~slack:2 (fun () -> E.Engines.tric ()) in
  E.Window.add_query w (wpattern ~id:1 "?x -a-> ?y WITHIN 100s");
  ignore (E.Window.handle_update w (Helpers.update "u -a-> v @50"));
  (* Watermark = 50 - slack = 48: an addition behind it is dropped whole. *)
  let r = E.Window.handle_update w (Helpers.update "w1 -a-> w2 @47") in
  Alcotest.(check bool) "late addition reports nothing" true (E.Report.is_empty r);
  Alcotest.(check int) "late addition counted" 1 (E.Window.late_dropped w);
  Alcotest.(check int) "late addition not retained" 1 (E.Window.live_edges w);
  (* Event time equal to the watermark is on time. *)
  let r = E.Window.handle_update w (Helpers.update "x1 -a-> x2 @48") in
  Alcotest.(check int) "at-watermark addition applies" 1 (E.Report.total_matches r);
  (* A late REMOVAL still applies — dropping it would desynchronize the
     window from the stream's ground truth. *)
  let r = E.Window.handle_update w (Helpers.update "- u -a-> v @40") in
  Alcotest.(check int) "late removal retracts" 1 (E.Report.total_retractions r);
  Alcotest.(check int) "late removal frees the slot" 1 (E.Window.live_edges w)

let test_count_tumbling_flush () =
  let w = E.Window.make (fun () -> E.Engines.tric ()) in
  E.Window.add_query w (wpattern ~id:1 "?x -a-> ?y WITHIN 3 EVENTS TUMBLING");
  List.iter
    (fun s -> ignore (E.Window.handle_update w (Helpers.update s)))
    [ "a1 -a-> b1"; "a2 -a-> b2"; "a3 -a-> b3" ];
  Alcotest.(check int) "full bucket" 3 (E.Window.live_edges w);
  (* The fourth addition starts a new bucket: everything flushes first. *)
  let r = E.Window.handle_update w (Helpers.update "a4 -a-> b4") in
  Alcotest.(check int) "new bucket's match" 1 (E.Report.total_matches r);
  Alcotest.(check int) "old bucket retracted" 3 (E.Report.total_retractions r);
  Alcotest.(check int) "only the new edge lives" 1 (E.Window.live_edges w);
  Alcotest.(check int) "one match left" 1
    (List.length (E.Window.current_matches w 1))

let test_spec_groups_isolated () =
  let w = E.Window.make (fun () -> E.Engines.tric ()) in
  E.Window.add_query w (wpattern ~id:1 "?x -a-> ?y WITHIN 2 EVENTS");
  (* No WITHIN and no default: unbounded group of its own. *)
  E.Window.add_query w (wpattern ~id:2 "?x -a-> ?y");
  Alcotest.(check int) "two groups" 2 (List.length (E.Window.engines w));
  Alcotest.(check int) "two queries" 2 (E.Window.num_queries w);
  (match E.Window.spec_of w 1 with
  | Some (Some (Wspec.Count { shape = Wspec.Sliding; size = 2 })) -> ()
  | _ -> Alcotest.fail "query 1 should sit in the 2-EVENTS group");
  Alcotest.(check bool) "query 2 unwindowed" true (E.Window.spec_of w 2 = Some None);
  Alcotest.(check bool) "unknown id" true (E.Window.spec_of w 9 = None);
  List.iter
    (fun s -> ignore (E.Window.handle_update w (Helpers.update s)))
    [ "s1 -a-> t1"; "s2 -a-> t2"; "s3 -a-> t3" ];
  (* The count group evicted s1; the unbounded group kept everything. *)
  Alcotest.(check int) "windowed result scoped" 2
    (List.length (E.Window.current_matches w 1));
  Alcotest.(check int) "unbounded result complete" 3
    (List.length (E.Window.current_matches w 2));
  Alcotest.(check int) "live edges sum over groups" 5 (E.Window.live_edges w);
  E.Window.shutdown w

(* Seeded violation: with expiry suppressed, retained edges outlive their
   deadlines and capacities — the window-coherence class must flag it. *)
let test_audit_flags_suppressed_expiry () =
  let scenario mk_query updates =
    let w = E.Window.make (fun () -> E.Engines.tric ~cache:true ()) in
    E.Window.add_query w mk_query;
    (match updates with
    | first :: rest ->
      ignore (E.Window.handle_update w (Helpers.update first));
      Alcotest.(check bool) "clean before corruption" true
        (Tric_audit.Audit.is_clean (E.Window.audit w None));
      E.Window.Corrupt.suppress_expiry w;
      List.iter (fun s -> ignore (E.Window.handle_update w (Helpers.update s))) rest
    | [] -> assert false);
    let findings = E.Window.audit w None in
    let classes =
      List.sort_uniq String.compare
        (List.map
           (fun f -> f.Tric_audit.Audit.invariant)
           (Tric_audit.Audit.errors findings))
    in
    Alcotest.(check bool) "window-coherence flagged" true
      (List.mem "window-coherence" classes)
  in
  (* Time window: an edge sits past its deadline at the watermark. *)
  scenario
    (wpattern ~id:1 "?x -a-> ?y WITHIN 10s")
    [ "u -a-> v @100"; "u2 -a-> v2 @200" ];
  (* Count window: more distinct retained edges than the capacity. *)
  scenario
    (wpattern ~id:1 "?x -a-> ?y WITHIN 1 EVENTS")
    [ "c1 -a-> d1"; "c2 -a-> d2" ]

(* The registry exposure: by_name ?window and the TRIC_WINDOW env var
   both wrap the engine in a spec-aware window. *)
let test_registry_window () =
  let spec = Wspec.Count { shape = Wspec.Sliding; size = 2 } in
  let e = E.Engines.by_name ~window:spec "TRIC+" in
  Alcotest.(check bool) "windowed name" true
    (String.length e.E.Matcher.name > 5
    && String.sub e.E.Matcher.name 0 5 = "TRIC+");
  e.E.Matcher.add_query (Helpers.pattern ~id:1 "?x -a-> ?y");
  ignore (e.E.Matcher.handle_update (Helpers.update "e1 -a-> t1"));
  ignore (e.E.Matcher.handle_update (Helpers.update "e2 -a-> t2"));
  let r = e.E.Matcher.handle_update (Helpers.update "e3 -a-> t3") in
  Alcotest.(check int) "eviction retraction through matcher" 1
    (E.Report.total_retractions r);
  Alcotest.(check int) "scoped matches" 2 (List.length (e.E.Matcher.current_matches 1));
  Alcotest.(check bool) "windowed matcher audits clean" true
    (Tric_audit.Audit.is_clean (e.E.Matcher.audit None));
  e.E.Matcher.shutdown ();
  (* Same through the environment. *)
  Unix.putenv "TRIC_WINDOW" "2 EVENTS";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "TRIC_WINDOW" "")
    (fun () ->
      let e = E.Engines.by_name "TRIC" in
      e.E.Matcher.add_query (Helpers.pattern ~id:1 "?x -a-> ?y");
      List.iter
        (fun s -> ignore (e.E.Matcher.handle_update (Helpers.update s)))
        [ "e1 -a-> t1"; "e2 -a-> t2"; "e3 -a-> t3" ];
      Alcotest.(check int) "env window scoped" 2
        (List.length (e.E.Matcher.current_matches 1));
      e.E.Matcher.shutdown ());
  Alcotest.check_raises "malformed TRIC_WINDOW"
    (Invalid_argument "TRIC_WINDOW=\"nonsense\": bad window span \"nonsense\"")
    (fun () ->
      Unix.putenv "TRIC_WINDOW" "nonsense";
      Fun.protect
        ~finally:(fun () -> Unix.putenv "TRIC_WINDOW" "")
        (fun () -> ignore (E.Engines.by_name "TRIC")))

(* The batched entry point: retention and watermark advance update by
   update, engine work lands as one net-op batch per group. *)
let test_window_batch () =
  let w = E.Window.make (fun () -> E.Engines.tric ~cache:true ()) in
  E.Window.add_query w (wpattern ~id:1 "?x -a-> ?y WITHIN 10s");
  let r =
    E.Window.handle_batch w
      (Helpers.updates [ "u1 -a-> v1 @100"; "u2 -a-> v2 @105"; "u3 -a-> v3 @120" ])
  in
  (* u1 (deadline 110) and u2 (deadline 115) expire when the in-batch
     watermark hits 120: their transient matches fold away inside the
     single net-op batch, leaving only u3's. *)
  Alcotest.(check int) "surviving matches" 1 (E.Report.total_matches r);
  Alcotest.(check int) "one live" 1 (E.Window.live_edges w);
  Alcotest.(check int) "expired inside the batch" 2 (E.Window.expired_edges w);
  Alcotest.(check int) "current scoped" 1 (List.length (E.Window.current_matches w 1))

let suite =
  [
    Alcotest.test_case "eviction retraction reported" `Quick
      test_evict_retraction_reported;
    Alcotest.test_case "time window expiry at watermark" `Quick test_time_window_expiry;
    Alcotest.test_case "late additions dropped, late removals applied" `Quick
      test_late_updates;
    Alcotest.test_case "count tumbling flush" `Quick test_count_tumbling_flush;
    Alcotest.test_case "per-spec groups isolated" `Quick test_spec_groups_isolated;
    Alcotest.test_case "audit flags suppressed expiry" `Quick
      test_audit_flags_suppressed_expiry;
    Alcotest.test_case "registry --window / TRIC_WINDOW wiring" `Quick
      test_registry_window;
    Alcotest.test_case "windowed handle_batch" `Quick test_window_batch;
  ]
